package dse

import (
	"context"
	"fmt"
	"time"

	"cimflow/internal/arch"
	"cimflow/internal/compiler"
	"cimflow/internal/report"
)

// The paper's evaluation figures (Sec. IV) are sweeps, so they run on the
// DSE engine: RunFig5/6/7 build the matching Spec, execute it on the
// worker pool (sharing compiled artifacts through the cache) and shape the
// results into the exact rows the original serial loops produced.

// Fig5Row is one bar of Fig. 5: a (model, strategy) pair with speed and
// energy normalized to the generic-mapping baseline.
type Fig5Row struct {
	Model      string
	Strategy   compiler.Strategy
	Cycles     int64
	CostEst    float64 // cost model's cycle prediction (Cycles is the truth)
	EnergyMJ   float64
	NormSpeed  float64 // generic cycles / cycles (higher is better)
	NormEnergy float64 // energy / generic energy (lower is better)
	// CompileMS and SimMS split the row's wall-clock cost between the
	// compile and simulate stages (host time, not deterministic).
	CompileMS float64
	SimMS     float64
}

// Fig5Models are the paper's four benchmark networks.
var Fig5Models = []string{"resnet18", "vgg19", "mobilenetv2", "efficientnetb0"}

// Fig5Strategies are the three compilation strategies compared.
var Fig5Strategies = []compiler.Strategy{
	compiler.StrategyGeneric, compiler.StrategyDuplication, compiler.StrategyDP,
}

// Fig6MGSizes and Fig6Flits are the sweep axes of Fig. 6 / Fig. 7.
var (
	Fig6MGSizes = []int{4, 8, 12, 16}
	Fig6Flits   = []int{8, 16}
	Fig6Models  = []string{"resnet18", "efficientnetb0"}
)

// ms converts a duration to milliseconds for report columns.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// strategyNames renders a strategy axis for a Spec.
func strategyNames(strats []compiler.Strategy) []string {
	names := make([]string, len(strats))
	for i, s := range strats {
		names[i] = s.String()
	}
	return names
}

// RunFig5 reproduces the compilation-optimization comparison of Fig. 5 on
// the given architecture. Every simulated and derived column is identical
// to the historical serial implementation at any parallelism; the
// CompileMS/SimMS columns are wall-clock host measurements.
func RunFig5(ctx context.Context, cfg arch.Config, models []string, opt RunOptions) ([]Fig5Row, error) {
	if len(models) == 0 {
		models = Fig5Models
	}
	spec := &Spec{Name: "fig5", Models: models, Strategies: strategyNames(Fig5Strategies)}
	points, err := spec.Expand(cfg)
	if err != nil {
		return nil, err
	}
	results, err := Run(ctx, points, opt)
	if err != nil {
		return nil, err
	}
	// Points are ordered model-outer / strategy-inner with generic first,
	// so the per-model baseline is always the first row of its group.
	var rows []Fig5Row
	var base Metrics
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("fig5 %s/%v: %w", r.Point.Model, r.Point.Strategy, r.Err)
		}
		if r.Point.Strategy == compiler.StrategyGeneric {
			base = r.Metrics
		}
		rows = append(rows, Fig5Row{
			Model:      r.Point.Model,
			Strategy:   r.Point.Strategy,
			Cycles:     r.Metrics.Cycles,
			CostEst:    r.CostEst,
			EnergyMJ:   r.Metrics.EnergyMJ,
			NormSpeed:  float64(base.Cycles) / float64(r.Metrics.Cycles),
			NormEnergy: r.Metrics.EnergyMJ / base.EnergyMJ,
			CompileMS:  ms(r.CompileTime),
			SimMS:      ms(r.SimTime),
		})
	}
	return rows, nil
}

// Fig5Table renders Fig. 5 rows as the printed series.
func Fig5Table(rows []Fig5Row) *report.Table {
	t := report.New("Fig. 5: normalized speed and energy by compilation strategy",
		"model", "strategy", "cycles", "cost_est", "norm_speed", "norm_energy", "energy_mJ", "compile_ms", "sim_ms")
	for _, r := range rows {
		t.Add(r.Model, r.Strategy.String(), r.Cycles, costEstCell(r.CostEst), r.NormSpeed, r.NormEnergy, r.EnergyMJ, r.CompileMS, r.SimMS)
	}
	return t
}

// Fig6Row is one configuration point of Fig. 6: energy breakdown and
// throughput for an (MG size, flit width) architecture variant.
type Fig6Row struct {
	Model      string
	MGSize     int // macros per group
	FlitBytes  int
	TOPS       float64
	LocalMemMJ float64
	ComputeMJ  float64
	NoCMJ      float64
	TotalMJ    float64
	Cycles     int64
	CostEst    float64 // cost model's cycle prediction (Cycles is the truth)
	// CompileMS and SimMS split the row's wall-clock cost (host time).
	CompileMS float64
	SimMS     float64
	strategy  compiler.Strategy
}

// RunFig6 reproduces the architectural exploration of Fig. 6: the energy
// breakdown (local memory / compute / NoC) and throughput across MG sizes
// and NoC flit widths, compiled with the generic mapping strategy.
func RunFig6(ctx context.Context, base arch.Config, models []string, opt RunOptions) ([]Fig6Row, error) {
	return runSweep(ctx, base, models, []compiler.Strategy{compiler.StrategyGeneric}, opt)
}

// Fig7Row is one point of the Fig. 7 design-space scatter.
type Fig7Row struct {
	Model     string
	MGSize    int
	FlitBytes int
	Strategy  compiler.Strategy
	TOPS      float64
	EnergyMJ  float64
	CostEst   float64 // cost model's cycle prediction
	// CompileMS and SimMS split the row's wall-clock cost (host time).
	CompileMS float64
	SimMS     float64
}

// RunFig7 reproduces the software/hardware co-design space of Fig. 7:
// the same hardware sweep under both the generic and the DP-optimized
// compilation strategies. With a cache shared across figures, the generic
// half reuses every artifact Fig. 6 already compiled.
func RunFig7(ctx context.Context, base arch.Config, models []string, opt RunOptions) ([]Fig7Row, error) {
	rows6, err := runSweep(ctx, base, models, []compiler.Strategy{
		compiler.StrategyGeneric, compiler.StrategyDP,
	}, opt)
	if err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for _, r := range rows6 {
		rows = append(rows, Fig7Row{
			Model:     r.Model,
			MGSize:    r.MGSize,
			FlitBytes: r.FlitBytes,
			Strategy:  r.strategy,
			TOPS:      r.TOPS,
			EnergyMJ:  r.TotalMJ,
			CostEst:   r.CostEst,
			CompileMS: r.CompileMS,
			SimMS:     r.SimMS,
		})
	}
	return rows, nil
}

func runSweep(ctx context.Context, base arch.Config, models []string, strategies []compiler.Strategy, opt RunOptions) ([]Fig6Row, error) {
	if len(models) == 0 {
		models = Fig6Models
	}
	spec := &Spec{
		Name:       "fig6",
		Models:     models,
		Strategies: strategyNames(strategies),
		MGSizes:    Fig6MGSizes,
		FlitBytes:  Fig6Flits,
	}
	points, err := spec.Expand(base)
	if err != nil {
		return nil, err
	}
	results, err := Run(ctx, points, opt)
	if err != nil {
		return nil, err
	}
	var rows []Fig6Row
	for _, r := range results {
		p := r.Point
		if r.Err != nil {
			return nil, fmt.Errorf("sweep %s mg=%d flit=%d %v: %w",
				p.Model, p.MGSize, p.FlitBytes, p.Strategy, r.Err)
		}
		rows = append(rows, Fig6Row{
			Model:      p.Model,
			MGSize:     p.MGSize,
			FlitBytes:  p.FlitBytes,
			TOPS:       r.Metrics.TOPS,
			LocalMemMJ: r.Metrics.LocalMemMJ,
			ComputeMJ:  r.Metrics.ComputeMJ,
			NoCMJ:      r.Metrics.NoCMJ,
			TotalMJ:    r.Metrics.EnergyMJ,
			Cycles:     r.Metrics.Cycles,
			CostEst:    r.CostEst,
			CompileMS:  ms(r.CompileTime),
			SimMS:      ms(r.SimTime),
			strategy:   p.Strategy,
		})
	}
	return rows, nil
}

// Fig6Table renders Fig. 6 rows.
func Fig6Table(rows []Fig6Row) *report.Table {
	t := report.New("Fig. 6: energy breakdown and throughput vs MG size and NoC flit width (generic mapping)",
		"model", "mg_size", "flit_B", "tops", "E_localmem_mJ", "E_compute_mJ", "E_noc_mJ", "E_total_mJ", "cost_est", "compile_ms", "sim_ms")
	for _, r := range rows {
		t.Add(r.Model, r.MGSize, r.FlitBytes, r.TOPS, r.LocalMemMJ, r.ComputeMJ, r.NoCMJ, r.TotalMJ, costEstCell(r.CostEst), r.CompileMS, r.SimMS)
	}
	return t
}

// Fig7Table renders Fig. 7 rows.
func Fig7Table(rows []Fig7Row) *report.Table {
	t := report.New("Fig. 7: SW/HW design space (energy vs throughput by MG size, flit width, strategy)",
		"model", "mg_size", "flit_B", "strategy", "tops", "energy_mJ", "cost_est", "compile_ms", "sim_ms")
	for _, r := range rows {
		t.Add(r.Model, r.MGSize, r.FlitBytes, r.Strategy.String(), r.TOPS, r.EnergyMJ, costEstCell(r.CostEst), r.CompileMS, r.SimMS)
	}
	return t
}
