package dse

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// SavedResult is the persisted form of one completed point: its metrics,
// or the error message if it failed.
type SavedResult struct {
	Label   string  `json:"label"`
	Metrics Metrics `json:"metrics"`
	CostEst float64 `json:"cost_est,omitempty"`
	Err     string  `json:"err,omitempty"`
}

// checkpointFile is the on-disk JSON layout.
type checkpointFile struct {
	Name string                 `json:"name,omitempty"`
	Done map[string]SavedResult `json:"done"`
}

// Checkpoint persists completed sweep points so an interrupted sweep can
// resume without re-simulating. Points are keyed by Point.Key — model,
// strategy, hardware fingerprint and seed — so a checkpoint survives
// reordering or extension of the spec, and a changed knob never matches a
// stale entry. The zero path keeps the checkpoint in memory only.
type Checkpoint struct {
	mu   sync.Mutex
	path string
	data checkpointFile
}

// NewCheckpoint returns an empty checkpoint persisted at path (path may be
// empty for a memory-only checkpoint, useful in tests).
func NewCheckpoint(path string) *Checkpoint {
	return &Checkpoint{path: path, data: checkpointFile{Done: make(map[string]SavedResult)}}
}

// LoadCheckpoint opens a checkpoint file, returning an empty checkpoint if
// the file does not exist yet.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewCheckpoint(path), nil
	}
	if err != nil {
		return nil, fmt.Errorf("dse: reading checkpoint: %w", err)
	}
	c, err := DecodeCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("dse: parsing checkpoint %s: %w", path, err)
	}
	c.path = path
	return c, nil
}

// DecodeCheckpoint parses checkpoint bytes into a memory-only checkpoint.
// It is the single entry point for untrusted checkpoint data (LoadCheckpoint,
// the search shard runner reading peer files, and the fuzz target): it either
// returns an error or a checkpoint whose encoding round-trips.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	c := NewCheckpoint("")
	if err := json.Unmarshal(data, &c.data); err != nil {
		return nil, fmt.Errorf("dse: decoding checkpoint: %w", err)
	}
	if c.data.Done == nil {
		c.data.Done = make(map[string]SavedResult)
	}
	return c, nil
}

// Encode renders the checkpoint in its on-disk form.
func (c *Checkpoint) Encode() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, err := json.MarshalIndent(&c.data, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("dse: encoding checkpoint: %w", err)
	}
	return append(data, '\n'), nil
}

// Path returns the file the checkpoint persists to ("" = memory-only).
func (c *Checkpoint) Path() string { return c.path }

// Lookup returns the saved result for a point key, if present.
func (c *Checkpoint) Lookup(key string) (SavedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.data.Done[key]
	return s, ok
}

// Entries returns a copy of every recorded entry, keyed as recorded. The
// search shard runner uses it to fold peer checkpoints into a merged view.
func (c *Checkpoint) Entries() map[string]SavedResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]SavedResult, len(c.data.Done))
	for k, v := range c.data.Done {
		out[k] = v
	}
	return out
}

// Len reports how many completed points the checkpoint holds.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.data.Done)
}

// Record stores a completed point under key and flushes the file, so
// progress survives a crash mid-sweep. Flush errors are deliberately
// swallowed here — a failing checkpoint must not abort a healthy sweep —
// but are surfaced by the final explicit Save.
func (c *Checkpoint) Record(key string, r *PointResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := SavedResult{Label: r.Point.Label(), Metrics: r.Metrics, CostEst: r.CostEst}
	if r.Err != nil {
		s.Err = r.Err.Error()
	}
	c.data.Done[key] = s
	_ = c.flushLocked()
}

// Save writes the checkpoint to its path (no-op for memory-only).
func (c *Checkpoint) Save() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

// flushLocked writes atomically via a temp file + rename.
func (c *Checkpoint) flushLocked() error {
	if c.path == "" {
		return nil
	}
	data, err := json.MarshalIndent(&c.data, "", "  ")
	if err != nil {
		return fmt.Errorf("dse: encoding checkpoint: %w", err)
	}
	tmp := c.path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(c.path), 0o755); err != nil {
		return fmt.Errorf("dse: checkpoint dir: %w", err)
	}
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("dse: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return fmt.Errorf("dse: committing checkpoint: %w", err)
	}
	return nil
}
