package dse

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cimflow/internal/arch"
	"cimflow/internal/artifact"
	"cimflow/internal/compiler"
	"cimflow/internal/model"
)

// Fingerprint returns a stable hardware identity for a configuration: the
// hex SHA-256 of its canonical JSON encoding with the cosmetic Name field
// cleared. Two configs agree on the fingerprint iff every architectural
// parameter agrees, so it is safe as a compile-cache and checkpoint key.
// (The implementation lives in internal/artifact, which shares the
// fingerprint as its on-disk content address.)
func Fingerprint(cfg *arch.Config) string { return artifact.ConfigFingerprint(cfg) }

// GraphFingerprint returns a stable structural identity for a model: the
// hex SHA-256 over every node's printed field values (the cosmetic graph
// Name is excluded, mirroring Fingerprint). Two graphs agree iff every
// node, shape and quantization parameter agrees, so distinct models that
// happen to share a Name (e.g. iterations of a user-built graph) never
// share a compiled artifact. Unlike a JSON encoding, fmt tolerates
// non-finite quantization scales in user-built graphs. (Implementation
// shared with internal/artifact's content addressing.)
func GraphFingerprint(g *model.Graph) string { return artifact.GraphFingerprint(g) }

// cacheKey identifies one compiled artifact: the model's structural
// fingerprint (name kept as a debuggable prefix), the hardware fingerprint
// and every compiler option that affects code generation.
func cacheKey(g *model.Graph, cfg *arch.Config, opt compiler.Options) string {
	return fmt.Sprintf("%s@%s|%s|%v|mc%d|fb%d",
		g.Name, GraphFingerprint(g), Fingerprint(cfg), opt.Strategy, opt.MaxClosures, opt.FullBufferLimit)
}

// CompileSource says where a compiled artifact came from.
type CompileSource int

const (
	// SourceFresh: the compiler ran.
	SourceFresh CompileSource = iota
	// SourceStore: decoded from the attached artifact store.
	SourceStore
	// SourceMemory: served from this cache's in-memory tier.
	SourceMemory
)

// String names the source for logs.
func (s CompileSource) String() string {
	switch s {
	case SourceFresh:
		return "compiled"
	case SourceStore:
		return "loaded from store"
	case SourceMemory:
		return "cached in memory"
	}
	return fmt.Sprintf("CompileSource(%d)", int(s))
}

// CompileInfo reports how a compile was satisfied: the tier that produced
// the artifact and how long that production took. For SourceMemory the
// duration is the original cost of filling the entry, not the (trivial)
// lookup time.
type CompileInfo struct {
	Source   CompileSource
	Duration time.Duration
}

// cacheEntry is one singleflight compilation slot: the first caller
// compiles, concurrent and later callers share the result.
type cacheEntry struct {
	once     sync.Once
	cfg      arch.Config // cache-owned copy referenced by compiled.Cfg
	compiled *compiler.Compiled
	info     CompileInfo
	err      error
}

// ctxEntry is one singleflight frontend slot: the first caller runs the
// compiler frontend (validation + condensation), later callers share the
// CompileContext.
type ctxEntry struct {
	once sync.Once
	cx   *compiler.CompileContext
	err  error
}

// CompileCache deduplicates compilation across sweep points that share a
// (model, config, strategy) triple — e.g. the Fig. 7 sweep reusing every
// generic-strategy artifact of Fig. 6 — and holds one CompileContext per
// distinct graph, so the compiler frontend runs once per model no matter
// how many architecture points or strategies a sweep visits. It is safe
// for concurrent use; a point compiled by one worker is awaited, not
// recompiled, by the others.
type CompileCache struct {
	mu         sync.Mutex
	store      *artifact.Store
	entries    map[string]*cacheEntry
	ctxs       map[string]*ctxEntry
	compiles   atomic.Int64
	hits       atomic.Int64
	storeLoads atomic.Int64
}

// NewCompileCache returns an empty cache.
func NewCompileCache() *CompileCache {
	return &CompileCache{
		entries: make(map[string]*cacheEntry),
		ctxs:    make(map[string]*ctxEntry),
	}
}

// Context returns the shared CompileContext for a graph, running the
// compiler frontend at most once per structural fingerprint.
func (c *CompileCache) Context(g *model.Graph) (*compiler.CompileContext, error) {
	key := GraphFingerprint(g)
	c.mu.Lock()
	e, ok := c.ctxs[key]
	if !ok {
		e = &ctxEntry{}
		c.ctxs[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.cx, e.err = compiler.NewContext(g) })
	return e.cx, e.err
}

// Contexts reports how many distinct graph frontends the cache holds.
func (c *CompileCache) Contexts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ctxs)
}

// SetStore attaches an on-disk artifact store as the cache's second tier:
// a memory miss loads from the store before compiling, and fresh compiles
// are persisted for the next process. The caller keeps ownership of the
// store's lifecycle (Close). Attach before concurrent use.
func (c *CompileCache) SetStore(s *artifact.Store) { c.store = s }

// Store returns the attached store tier, if any.
func (c *CompileCache) Store() *artifact.Store { return c.store }

// Compile returns the compiled artifact for (g, cfg, opt), compiling at
// most once per distinct key through the graph's shared CompileContext.
// The returned Compiled references a cache-owned copy of cfg, so callers
// may let cfg go out of scope.
func (c *CompileCache) Compile(g *model.Graph, cfg *arch.Config, opt compiler.Options) (*compiler.Compiled, error) {
	compiled, _, err := c.CompileWithInfo(g, cfg, opt)
	return compiled, err
}

// CompileWithInfo is Compile plus provenance: which tier satisfied the
// call (fresh compile, store load, or in-memory hit) and how long the
// artifact originally took to produce. Lookup order is memory → store →
// compile; fresh compiles are written back to the store when one is
// attached.
func (c *CompileCache) CompileWithInfo(g *model.Graph, cfg *arch.Config, opt compiler.Options) (*compiler.Compiled, CompileInfo, error) {
	key := cacheKey(g, cfg, opt)
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{cfg: *cfg}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	}
	leader := false
	e.once.Do(func() {
		leader = true
		start := time.Now()
		e.info.Source = SourceFresh
		compile := func() (*compiler.Compiled, error) {
			c.compiles.Add(1)
			cx, err := c.Context(g)
			if err != nil {
				return nil, err
			}
			return cx.Compile(&e.cfg, opt)
		}
		if c.store != nil {
			var fromStore bool
			e.compiled, fromStore, e.err = c.store.GetOrCompile(g, &e.cfg, opt, compile)
			if fromStore {
				e.info.Source = SourceStore
				c.storeLoads.Add(1)
			}
		} else {
			e.compiled, e.err = compile()
		}
		e.info.Duration = time.Since(start)
	})
	info := e.info
	if !leader {
		info.Source = SourceMemory
	}
	return e.compiled, info, e.err
}

// CompileCalls reports how many real compiler.Compile invocations the
// cache has performed (misses).
func (c *CompileCache) CompileCalls() int64 { return c.compiles.Load() }

// Hits reports how many lookups were served from the cache.
func (c *CompileCache) Hits() int64 { return c.hits.Load() }

// StoreLoads reports how many compiles were satisfied by decoding an
// artifact from the attached store instead of running the compiler.
func (c *CompileCache) StoreLoads() int64 { return c.storeLoads.Load() }

// Len reports the number of distinct compiled artifacts held.
func (c *CompileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
