package dse

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"cimflow/internal/arch"
	"cimflow/internal/compiler"
	"cimflow/internal/model"
)

// Fingerprint returns a stable hardware identity for a configuration: the
// hex SHA-256 of its canonical JSON encoding with the cosmetic Name field
// cleared. Two configs agree on the fingerprint iff every architectural
// parameter agrees, so it is safe as a compile-cache and checkpoint key.
func Fingerprint(cfg *arch.Config) string {
	c := *cfg
	c.Name = ""
	data, err := json.Marshal(&c)
	if err != nil {
		// Config is a plain struct of scalars; Marshal cannot fail.
		panic(fmt.Sprintf("dse: fingerprinting config: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16])
}

// GraphFingerprint returns a stable structural identity for a model: the
// hex SHA-256 over every node's printed field values (the cosmetic graph
// Name is excluded, mirroring Fingerprint). Two graphs agree iff every
// node, shape and quantization parameter agrees, so distinct models that
// happen to share a Name (e.g. iterations of a user-built graph) never
// share a compiled artifact. Unlike a JSON encoding, fmt tolerates
// non-finite quantization scales in user-built graphs.
func GraphFingerprint(g *model.Graph) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d", len(g.Nodes))
	for _, n := range g.Nodes {
		fmt.Fprintf(h, "|%+v", *n)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// cacheKey identifies one compiled artifact: the model's structural
// fingerprint (name kept as a debuggable prefix), the hardware fingerprint
// and every compiler option that affects code generation.
func cacheKey(g *model.Graph, cfg *arch.Config, opt compiler.Options) string {
	return fmt.Sprintf("%s@%s|%s|%v|mc%d|fb%d",
		g.Name, GraphFingerprint(g), Fingerprint(cfg), opt.Strategy, opt.MaxClosures, opt.FullBufferLimit)
}

// cacheEntry is one singleflight compilation slot: the first caller
// compiles, concurrent and later callers share the result.
type cacheEntry struct {
	once     sync.Once
	cfg      arch.Config // cache-owned copy referenced by compiled.Cfg
	compiled *compiler.Compiled
	err      error
}

// ctxEntry is one singleflight frontend slot: the first caller runs the
// compiler frontend (validation + condensation), later callers share the
// CompileContext.
type ctxEntry struct {
	once sync.Once
	cx   *compiler.CompileContext
	err  error
}

// CompileCache deduplicates compilation across sweep points that share a
// (model, config, strategy) triple — e.g. the Fig. 7 sweep reusing every
// generic-strategy artifact of Fig. 6 — and holds one CompileContext per
// distinct graph, so the compiler frontend runs once per model no matter
// how many architecture points or strategies a sweep visits. It is safe
// for concurrent use; a point compiled by one worker is awaited, not
// recompiled, by the others.
type CompileCache struct {
	mu       sync.Mutex
	entries  map[string]*cacheEntry
	ctxs     map[string]*ctxEntry
	compiles atomic.Int64
	hits     atomic.Int64
}

// NewCompileCache returns an empty cache.
func NewCompileCache() *CompileCache {
	return &CompileCache{
		entries: make(map[string]*cacheEntry),
		ctxs:    make(map[string]*ctxEntry),
	}
}

// Context returns the shared CompileContext for a graph, running the
// compiler frontend at most once per structural fingerprint.
func (c *CompileCache) Context(g *model.Graph) (*compiler.CompileContext, error) {
	key := GraphFingerprint(g)
	c.mu.Lock()
	e, ok := c.ctxs[key]
	if !ok {
		e = &ctxEntry{}
		c.ctxs[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.cx, e.err = compiler.NewContext(g) })
	return e.cx, e.err
}

// Contexts reports how many distinct graph frontends the cache holds.
func (c *CompileCache) Contexts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ctxs)
}

// Compile returns the compiled artifact for (g, cfg, opt), compiling at
// most once per distinct key through the graph's shared CompileContext.
// The returned Compiled references a cache-owned copy of cfg, so callers
// may let cfg go out of scope.
func (c *CompileCache) Compile(g *model.Graph, cfg *arch.Config, opt compiler.Options) (*compiler.Compiled, error) {
	key := cacheKey(g, cfg, opt)
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{cfg: *cfg}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	}
	e.once.Do(func() {
		c.compiles.Add(1)
		cx, err := c.Context(g)
		if err != nil {
			e.err = err
			return
		}
		e.compiled, e.err = cx.Compile(&e.cfg, opt)
	})
	return e.compiled, e.err
}

// CompileCalls reports how many real compiler.Compile invocations the
// cache has performed (misses).
func (c *CompileCache) CompileCalls() int64 { return c.compiles.Load() }

// Hits reports how many lookups were served from the cache.
func (c *CompileCache) Hits() int64 { return c.hits.Load() }

// Len reports the number of distinct compiled artifacts held.
func (c *CompileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
