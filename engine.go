package cimflow

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"cimflow/internal/artifact"
	"cimflow/internal/compiler"
	"cimflow/internal/core"
	"cimflow/internal/dse"
	"cimflow/internal/model"
)

// Lifecycle errors, matched with errors.Is.
var (
	// ErrSessionClosed is returned by Session methods after Session.Close
	// (or Engine.Close): the pooled chips are released and the session
	// accepts no further work.
	ErrSessionClosed = core.ErrClosed
	// ErrEngineClosed is returned by Engine.Session/SessionFor after
	// Engine.Close.
	ErrEngineClosed = errors.New("cimflow: engine closed")
)

// Option configures an Engine or a Session built from it. Options replace
// the flat Options struct of the deprecated free functions: engine-level
// options set defaults, and Session-level options override them per model.
type Option func(*settings)

// settings is the resolved option set; it reuses the internal flat struct.
type settings struct {
	core.Options
	cache *dse.CompileCache
	store *artifact.Store
}

// WithStrategy selects the CG-level compilation strategy (default:
// StrategyGeneric).
func WithStrategy(s Strategy) Option {
	return func(o *settings) { o.Strategy = s }
}

// WithSeed sets the deterministic synthetic-weight seed a Session loads
// its model parameters from (default 0).
func WithSeed(seed uint64) Option {
	return func(o *settings) { o.Seed = seed }
}

// WithCycleLimit overrides the simulator's runaway guard (0 = default).
func WithCycleLimit(cycles int64) Option {
	return func(o *settings) { o.CycleLimit = cycles }
}

// WithFullBufferLimit forwards the compiler's streaming threshold override
// (0 = default): activations larger than this stream through ring buffers
// instead of being staged whole in local memory.
func WithFullBufferLimit(bytes int32) Option {
	return func(o *settings) { o.FullBufferLimit = bytes }
}

// WithMaxPooledChips caps how many idle pre-initialized chips a Session
// keeps for reuse (0 = GOMAXPROCS). More pooled chips serve more
// concurrent Infer calls without re-staging weights, at the price of
// memory: each chip holds the model's full global-memory image.
func WithMaxPooledChips(n int) Option {
	return func(o *settings) { o.MaxPooledChips = n }
}

// WithSimWorkers sets the simulator's conservative-window worker-pool
// size per chip (0 = GOMAXPROCS, 1 = the serial scheduler). Simulation
// results are bit-identical at any setting — the pool only changes how
// many host cores one simulated chip spreads across, so serving layers
// that already parallelize across chips typically pin this to 1.
func WithSimWorkers(n int) Option {
	return func(o *settings) { o.SimWorkers = n }
}

// WithSimLanes sets a Session's lane-batch capacity (at most
// sim.MaxLanes, 64): InferBatch packs up to n inputs into one
// lane-batched chip run, paying the cycle-accurate schedule — dispatch,
// scoreboard, NoC and energy accounting — once for the whole group while
// applying per-input data effects in stride. Per-lane results are
// bit-identical to serial per-input runs; a lane whose data would change
// control flow diverges and is transparently re-run on the serial path.
// 0 or 1 disables lane batching.
func WithSimLanes(n int) Option {
	return func(o *settings) { o.SimLanes = n }
}

// WithCompileCache shares a compile cache with the engine — e.g. one a DSE
// sweep over the same architecture already populated, so serving reuses
// the sweep's artifacts. Passed to NewEngine it becomes the engine's
// cache; passed to Session it applies to that session's compilation only
// (engine-level CompileCalls/CacheHits keep reporting the engine's cache).
func WithCompileCache(c *CompileCache) Option {
	return func(o *settings) { o.cache = c }
}

// WithArtifactStore attaches an on-disk artifact store as the engine
// compile cache's second tier (memory → store → compile): compiles missing
// in memory are loaded from the store when present, fresh compiles are
// persisted for the next process, and a warm restart skips compilation
// entirely. The engine takes ownership of the store — Engine.Close closes
// it. Engine-level only; it configures the engine's cache at NewEngine
// time and is ignored by Session.
func WithArtifactStore(s *ArtifactStore) Option {
	return func(o *settings) { o.store = s }
}

// Engine is the reusable entry point of the framework: one architecture
// plus a compile cache and per-(model, strategy) inference Sessions. Where
// the deprecated Run recompiled the model and rebuilt the chip on every
// call, an Engine compiles each (model, strategy, …) combination exactly
// once — reusing the DSE fingerprint cache, so sweeps and serving share
// artifacts — and Sessions pool pre-initialized chips (weights staged
// once, activation state reset between runs) for compile-once/infer-many
// workloads. Compilation is context-aware: the cache keys on the graph's
// frontend artifact, so all strategies and option variants of one model
// share a single CompileContext and recompile only the planning and
// codegen stages. An Engine is safe for concurrent use.
type Engine struct {
	cfg      Config
	defaults settings
	cache    *dse.CompileCache
	store    *artifact.Store

	mu       sync.Mutex
	sessions map[sessionKey]*sessionEntry
	closed   bool
}

// sessionEntry is one singleflight Session slot: the first caller stages
// weights and builds the chip pool, concurrent callers share the result
// (mirroring the CompileCache pattern one layer up). ready closes when the
// build finished, letting Close and PooledChips inspect entries without
// blocking behind an in-flight build.
type sessionEntry struct {
	once  sync.Once
	ready chan struct{}
	s     *Session
	err   error
}

// sessionKey identifies a cached Session: the graph's structural
// fingerprint plus every option that changes compilation, weights or run
// behavior. Structural identity (not pointer identity) means a serving
// loop may re-look a model up per request and still reuse one Session.
type sessionKey struct {
	graph      string // dse.GraphFingerprint
	strategy   Strategy
	fbl        int32
	seed       uint64
	cycleLimit int64
	maxPooled  int
	simWorkers int
	simLanes   int
	cache      *CompileCache
}

// NewEngine validates the architecture and returns an Engine whose
// Sessions share one compile cache. Options set the engine-wide defaults;
// Session can override them per model.
func NewEngine(cfg Config, opts ...Option) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:      cfg,
		sessions: make(map[sessionKey]*sessionEntry),
	}
	for _, opt := range opts {
		opt(&e.defaults)
	}
	e.cache = e.defaults.cache
	if e.cache == nil {
		e.cache = dse.NewCompileCache()
	}
	if e.defaults.store != nil {
		e.store = e.defaults.store
		e.cache.SetStore(e.store)
	}
	return e, nil
}

// Config returns the engine's architecture description.
func (e *Engine) Config() Config { return e.cfg }

// CompileCalls reports how many real compilations the engine has performed;
// with Sessions reused it stays at one per distinct (model, strategy, …).
func (e *Engine) CompileCalls() int64 { return e.cache.CompileCalls() }

// CacheHits reports how many compilations were served from the cache.
func (e *Engine) CacheHits() int64 { return e.cache.Hits() }

// StoreLoads reports how many compilations were satisfied by decoding an
// artifact from the attached store (0 without WithArtifactStore).
func (e *Engine) StoreLoads() int64 { return e.cache.StoreLoads() }

// ArtifactStore returns the store attached with WithArtifactStore, or nil.
func (e *Engine) ArtifactStore() *ArtifactStore { return e.store }

// CompileContexts reports how many distinct graph frontends the engine's
// compile cache holds: compilations are keyed on the frontend artifact, so
// every strategy or option variant of one model shares a single
// CompileContext (condensation once, planning memoized per architecture).
func (e *Engine) CompileContexts() int { return e.cache.Contexts() }

// PooledChips sums the idle pre-initialized chips held across all of the
// engine's live sessions — the engine-level pool introspection a serving
// layer reports in its metrics.
func (e *Engine) PooledChips() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	total := 0
	for _, entry := range e.sessions {
		if s := entry.session(); s != nil {
			total += s.PooledChips()
		}
	}
	return total
}

// Sessions reports how many distinct (model, options) sessions the engine
// currently holds.
func (e *Engine) Sessions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sessions)
}

// Close closes every session the engine built — draining and releasing
// their pooled chips — marks the engine closed (Session and SessionFor
// fail with ErrEngineClosed, and in-flight inferences on existing sessions
// finish before their chips are dropped), and closes the attached artifact
// store, releasing its directory lock. Close is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	for _, entry := range e.sessions {
		if s := entry.session(); s != nil {
			s.Close()
		}
	}
	e.mu.Unlock()
	// Outside the engine lock: a store close waits on nothing internal,
	// but keeping lock scopes minimal mirrors the rest of the engine.
	if e.store != nil {
		return e.store.Close()
	}
	return nil
}

// session returns the entry's built session without blocking on an
// in-flight build: nil when the build has not completed (or failed).
func (en *sessionEntry) session() *Session {
	select {
	case <-en.ready:
		return en.s
	default:
		return nil
	}
}

// Session returns the compile-once/infer-many handle for a model:
// repeated calls with a structurally identical graph and the same options
// return the same Session, so its compiled artifact and chip pool are
// shared — re-looking a model up per request is safe and stays
// compile-once.
func (e *Engine) Session(g *Graph, opts ...Option) (*Session, error) {
	if g == nil {
		return nil, fmt.Errorf("cimflow: nil graph")
	}
	st := e.defaults
	for _, opt := range opts {
		opt(&st)
	}
	cache := st.cache
	if cache == nil {
		cache = e.cache
	}
	key := sessionKey{
		graph:      dse.GraphFingerprint(g),
		strategy:   st.Strategy,
		fbl:        st.FullBufferLimit,
		seed:       st.Seed,
		cycleLimit: st.CycleLimit,
		maxPooled:  st.MaxPooledChips,
		simWorkers: st.SimWorkers,
		simLanes:   st.SimLanes,
		cache:      cache,
	}
	for {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return nil, ErrEngineClosed
		}
		entry, ok := e.sessions[key]
		if !ok {
			entry = &sessionEntry{ready: make(chan struct{})}
			e.sessions[key] = entry
		}
		e.mu.Unlock()
		// Build outside the map lock: concurrent first-time callers of one
		// key await a single compilation and a single weight-staging pass.
		entry.once.Do(func() {
			defer close(entry.ready)
			compiled, info, err := cache.CompileWithInfo(g, &e.cfg, compiler.Options{
				Strategy:        st.Strategy,
				FullBufferLimit: st.FullBufferLimit,
			})
			if err != nil {
				entry.err = fmt.Errorf("cimflow: compile %s: %w", g.Name, err)
				return
			}
			inner, err := core.NewSession(compiled, model.NewSeededWeights(g, st.Seed), st.Options)
			if err != nil {
				entry.err = err
				return
			}
			entry.s = &Session{inner: inner, graph: g, compileInfo: info}
		})
		<-entry.ready
		// The engine may have closed while this entry was building; its
		// session missed Engine.Close's sweep, so release it here.
		e.mu.Lock()
		closedNow := e.closed
		e.mu.Unlock()
		if closedNow {
			if entry.err == nil {
				entry.s.inner.Close()
			}
			return nil, ErrEngineClosed
		}
		// A session closed by the caller (not by Engine.Close) is stale:
		// drop the entry and retry instead of handing out a handle that
		// only returns ErrSessionClosed. When a concurrent caller already
		// replaced the entry, retry as well — the next iteration picks up
		// the fresh one (or ErrEngineClosed if the engine closed meanwhile).
		if entry.err == nil && entry.s.inner.Closed() {
			e.mu.Lock()
			if e.sessions[key] == entry {
				delete(e.sessions, key)
			}
			e.mu.Unlock()
			continue
		}
		return entry.s, entry.err
	}
}

// SessionFor looks a model up by name (see LookupModel) and returns its
// Session. Sessions key on the graph's structural fingerprint, so the
// per-request pattern of a serving loop reuses one Session per model.
func (e *Engine) SessionFor(name string, opts ...Option) (*Session, error) {
	g, err := LookupModel(name)
	if err != nil {
		return nil, err
	}
	return e.Session(g, opts...)
}

// Session is a compiled model bound to an Engine: per-core programs built
// once, weights staged once, chips pooled and reset between runs. It is
// safe for concurrent use — the serving pattern is one Session shared by
// many goroutines, each calling Infer with its own input.
type Session struct {
	inner       *core.Session
	graph       *Graph
	compileInfo dse.CompileInfo
}

// Graph returns the model the session runs.
func (s *Session) Graph() *Graph { return s.graph }

// CompileInfo reports how this session's compiled artifact was produced —
// fresh compile, artifact-store load, or in-memory cache hit — and how
// long that production took, so operators can see warm-start wins.
func (s *Session) CompileInfo() CompileInfo { return s.compileInfo }

// Compiled returns the compiled artifact (programs, plan, layout).
func (s *Session) Compiled() *Compiled { return s.inner.Compiled() }

// InputShape returns the tensor shape Infer expects.
func (s *Session) InputShape() Shape { return s.inner.InputShape() }

// PooledChips reports how many idle pre-initialized chips the session holds.
func (s *Session) PooledChips() int { return s.inner.PooledChips() }

// SimLanes reports the session's lane-batch capacity (>= 1, see
// WithSimLanes).
func (s *Session) SimLanes() int { return s.inner.SimLanes() }

// LaneOccupancy returns a histogram of completed chip runs by lane
// occupancy: entry b counts runs that carried b inferences.
func (s *Session) LaneOccupancy() []int64 { return s.inner.LaneOccupancy() }

// LaneFallbacks reports how many lanes diverged during lane-batched runs
// and were transparently re-run on the serial path.
func (s *Session) LaneFallbacks() int64 { return s.inner.LaneFallbacks() }

// Closed reports whether the session has been closed.
func (s *Session) Closed() bool { return s.inner.Closed() }

// Close drains and releases the session's pooled chips and marks it
// closed: further Infer/InferBatch/Validate calls fail with
// ErrSessionClosed. In-flight inferences finish normally; their chips are
// dropped instead of re-pooled. Close is idempotent, and the engine builds
// a fresh session on the next request for the same model and options.
func (s *Session) Close() error { return s.inner.Close() }

// SeededInput returns a deterministic input tensor of the session's input
// shape — a stand-in for real data in tests and demos.
func (s *Session) SeededInput(seed uint64) Tensor {
	return model.SeededInput(s.inner.InputShape(), seed)
}

// Infer executes one inference on a pooled chip and returns the full
// result: output tensor, chip-level Stats, and derived metrics. Cancelling
// ctx aborts the cycle-accurate simulation mid-run with an error wrapping
// ctx.Err().
func (s *Session) Infer(ctx context.Context, input Tensor) (*Result, error) {
	return s.inner.Infer(ctx, input)
}

// InferBatch runs one inference per input, fanning out across the chip
// pool. Results align with inputs; on failure the remaining runs are
// cancelled and the root-cause error is returned.
func (s *Session) InferBatch(ctx context.Context, inputs []Tensor) ([]*Result, error) {
	return s.inner.InferBatch(ctx, inputs)
}

// Validate runs one inference and compares it against the golden reference
// executor, returning the number of mismatching elements (0 = bit-exact).
func (s *Session) Validate(ctx context.Context, input Tensor) (int, error) {
	return s.inner.Validate(ctx, input)
}

// LookupModel returns a built-in benchmark network by name, or an error
// naming the known models. It replaces nil-returning Model for callers
// that want a diagnosable failure.
func LookupModel(name string) (*Graph, error) {
	if g := model.Zoo(name); g != nil {
		return g, nil
	}
	return nil, fmt.Errorf("cimflow: unknown model %q (known models: %s)",
		name, strings.Join(model.ZooNames(), ", "))
}

// SeededInput returns a deterministic INT8 input tensor for a shape — the
// synthetic-input generator the deprecated Run applied with seed+1.
func SeededInput(shape Shape, seed uint64) Tensor {
	return model.SeededInput(shape, seed)
}

// optionsFrom adapts a legacy flat Options struct for the deprecated
// wrappers.
func optionsFrom(opt Options) []Option {
	return []Option{
		WithStrategy(opt.Strategy),
		WithSeed(opt.Seed),
		WithCycleLimit(opt.CycleLimit),
		WithFullBufferLimit(opt.FullBufferLimit),
		WithMaxPooledChips(opt.MaxPooledChips),
	}
}
