package cimflow_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"cimflow"
)

// TestEngineCompileOnceInferMany is the acceptance test of the Engine API:
// compiling a model once and calling Infer N times performs exactly one
// compilation (asserted via the engine's cache stats), and every pooled
// run is byte-identical to an independent deprecated Run call with the
// same weights and input.
func TestEngineCompileOnceInferMany(t *testing.T) {
	cfg := cimflow.DefaultConfig()
	g, err := cimflow.LookupModel("tinyresnet")
	if err != nil {
		t.Fatal(err)
	}
	engine, err := cimflow.NewEngine(cfg,
		cimflow.WithStrategy(cimflow.StrategyDP),
		cimflow.WithSeed(7),
		cimflow.WithMaxPooledChips(1)) // force the chip-reuse path
	if err != nil {
		t.Fatal(err)
	}
	sess, err := engine.Session(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const n = 4
	for i := 0; i < n; i++ {
		// Run(seed=7) simulates with weights seed 7 and input seed 8: the
		// session shares the weights, so the same input must reproduce the
		// legacy single-shot result exactly.
		got, err := sess.Infer(ctx, sess.SeededInput(8))
		if err != nil {
			t.Fatalf("infer %d: %v", i, err)
		}
		want, err := cimflow.Run(g, cfg, cimflow.Options{Strategy: cimflow.StrategyDP, Seed: 7})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if got.Stats.Cycles != want.Stats.Cycles || got.EnergyMJ != want.EnergyMJ {
			t.Fatalf("infer %d: %d cycles %v mJ, independent run %d cycles %v mJ",
				i, got.Stats.Cycles, got.EnergyMJ, want.Stats.Cycles, want.EnergyMJ)
		}
		for j := range want.Output.Data {
			if got.Output.Data[j] != want.Output.Data[j] {
				t.Fatalf("infer %d: output byte %d differs from independent run", i, j)
			}
		}
	}
	if calls := engine.CompileCalls(); calls != 1 {
		t.Errorf("engine performed %d compilations for %d inferences, want exactly 1", calls, n)
	}
	// Re-requesting the session must reuse it, not recompile.
	again, err := engine.Session(g)
	if err != nil {
		t.Fatal(err)
	}
	if again != sess {
		t.Error("Session returned a new handle for identical options")
	}
	if calls := engine.CompileCalls(); calls != 1 {
		t.Errorf("session re-request recompiled: %d calls", calls)
	}
}

// TestEngineInferCancelled: an already-cancelled context must abort Infer
// with ctx.Err() before any simulation work happens.
func TestEngineInferCancelled(t *testing.T) {
	engine, err := cimflow.NewEngine(cimflow.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := engine.SessionFor("tinymlp")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Infer(ctx, sess.SeededInput(1)); !errors.Is(err, context.Canceled) {
		t.Errorf("Infer with cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestEngineConcurrentInfer drives one session from many goroutines — the
// serving pattern — and checks identical inputs produce identical outputs.
func TestEngineConcurrentInfer(t *testing.T) {
	engine, err := cimflow.NewEngine(cimflow.DefaultConfig(), cimflow.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := engine.SessionFor("tinycnn")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ref, err := sess.Infer(ctx, sess.SeededInput(9))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	outs := make([]*cimflow.Result, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			outs[w], errs[w] = sess.Infer(ctx, sess.SeededInput(9))
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if outs[w].Stats.Cycles != ref.Stats.Cycles {
			t.Errorf("worker %d: %d cycles, want %d", w, outs[w].Stats.Cycles, ref.Stats.Cycles)
		}
		for j := range ref.Output.Data {
			if outs[w].Output.Data[j] != ref.Output.Data[j] {
				t.Fatalf("worker %d: output differs at byte %d", w, j)
			}
		}
	}
	if calls := engine.CompileCalls(); calls != 1 {
		t.Errorf("%d compilations under concurrency, want 1", calls)
	}
}

// TestEngineInferBatch: batch results carry per-run stats and match the
// input order.
func TestEngineInferBatch(t *testing.T) {
	engine, err := cimflow.NewEngine(cimflow.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := engine.SessionFor("tinymlp")
	if err != nil {
		t.Fatal(err)
	}
	inputs := []cimflow.Tensor{sess.SeededInput(1), sess.SeededInput(2), sess.SeededInput(3)}
	results, err := sess.InferBatch(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(inputs) {
		t.Fatalf("%d results for %d inputs", len(results), len(inputs))
	}
	for i, r := range results {
		if r == nil || r.Stats == nil {
			t.Fatalf("result %d missing stats", i)
		}
		want, err := sess.Infer(context.Background(), inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		for j := range want.Output.Data {
			if r.Output.Data[j] != want.Output.Data[j] {
				t.Fatalf("batch result %d differs from individual inference", i)
			}
		}
	}
}

// TestEngineValidateSession: the session-level golden-reference check.
func TestEngineValidateSession(t *testing.T) {
	engine, err := cimflow.NewEngine(cimflow.DefaultConfig(),
		cimflow.WithStrategy(cimflow.StrategyDP), cimflow.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := engine.SessionFor("tinymobile")
	if err != nil {
		t.Fatal(err)
	}
	mism, err := sess.Validate(context.Background(), sess.SeededInput(6))
	if err != nil {
		t.Fatal(err)
	}
	if mism != 0 {
		t.Errorf("%d mismatches against the golden reference", mism)
	}
}

// TestLookupModel: known names resolve, unknown names get a helpful error.
func TestLookupModel(t *testing.T) {
	g, err := cimflow.LookupModel("mobilenetv2")
	if err != nil || g == nil {
		t.Fatalf("LookupModel(mobilenetv2) = %v, %v", g, err)
	}
	if _, err := cimflow.LookupModel("nope"); err == nil {
		t.Fatal("LookupModel accepted an unknown name")
	} else {
		for _, name := range cimflow.ModelNames() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("error %q does not list known model %q", err, name)
			}
		}
	}
}

// TestSessionReuseKeying: SessionFor must reuse one Session per name, and
// run-behavior options (cycle limit, pool cap) must key distinct Sessions
// instead of silently returning one built with different values.
func TestSessionReuseKeying(t *testing.T) {
	engine, err := cimflow.NewEngine(cimflow.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := engine.SessionFor("tinymlp")
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine.SessionFor("tinymlp")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("SessionFor returned distinct sessions for the same name")
	}
	limited, err := engine.SessionFor("tinymlp", cimflow.WithCycleLimit(10))
	if err != nil {
		t.Fatal(err)
	}
	if limited == a {
		t.Error("a different cycle limit returned the unlimited session")
	}
	// The tiny limit must actually bind: the simulation aborts.
	if _, err := limited.Infer(context.Background(), limited.SeededInput(1)); err == nil ||
		!strings.Contains(err.Error(), "cycle limit") {
		t.Errorf("cycle-limited session ran to completion: %v", err)
	}
	// Both sessions compiled the same artifact: still one compilation.
	if calls := engine.CompileCalls(); calls != 1 {
		t.Errorf("%d compilations across keyed sessions, want 1 (cache shared)", calls)
	}
}

// TestEngineRejectsBadConfig: NewEngine validates the architecture.
func TestEngineRejectsBadConfig(t *testing.T) {
	cfg := cimflow.DefaultConfig()
	cfg.Chip.CoreRows = 0
	if _, err := cimflow.NewEngine(cfg); err == nil {
		t.Error("NewEngine accepted an invalid architecture")
	}
}

// TestEngineSharesCompileContexts: sessions for every strategy of one
// model perform three compilations but share a single compiler frontend
// (CompileContext), keyed on the graph's structural fingerprint.
func TestEngineSharesCompileContexts(t *testing.T) {
	engine, err := cimflow.NewEngine(cimflow.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g, err := cimflow.LookupModel("tinyresnet")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []cimflow.Strategy{cimflow.StrategyGeneric, cimflow.StrategyDuplication, cimflow.StrategyDP} {
		if _, err := engine.Session(g, cimflow.WithStrategy(s)); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
	}
	if got := engine.CompileCalls(); got != 3 {
		t.Errorf("CompileCalls = %d, want 3", got)
	}
	if got := engine.CompileContexts(); got != 1 {
		t.Errorf("CompileContexts = %d, want 1 (one graph)", got)
	}
	// A structurally identical copy of the graph maps to the same context.
	copyG, _ := cimflow.LookupModel("tinyresnet")
	if _, err := engine.Session(copyG, cimflow.WithStrategy(cimflow.StrategyDP), cimflow.WithSeed(3)); err != nil {
		t.Fatal(err)
	}
	if got := engine.CompileContexts(); got != 1 {
		t.Errorf("CompileContexts after re-lookup = %d, want 1", got)
	}
	// NewCompileContext drives the staged pipeline directly and matches
	// the engine's artifact.
	cx, err := cimflow.NewCompileContext(g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cimflow.DefaultConfig()
	direct, err := cx.Compile(&cfg, cimflow.CompileOptions{Strategy: cimflow.StrategyDP})
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := cimflow.Compile(g, cfg, cimflow.StrategyDP)
	if err != nil {
		t.Fatal(err)
	}
	if direct.InstructionCount() != oneShot.InstructionCount() || direct.GlobalBytes() != oneShot.GlobalBytes() {
		t.Errorf("context compile diverges from one-shot: %d/%d instructions, %d/%d global bytes",
			direct.InstructionCount(), oneShot.InstructionCount(), direct.GlobalBytes(), oneShot.GlobalBytes())
	}
}

// TestEngineArtifactStoreWarmStart is the engine-level proof of the
// artifact-store tier: a first engine compiles fresh and persists, a
// second engine over the same directory loads from disk without compiling,
// and both serve byte-identical inference results. Engine.Close must close
// the store it owns (releasing the directory lock so a new engine can
// reopen it) and stay idempotent.
func TestEngineArtifactStoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	cfg := cimflow.DefaultConfig()
	g, err := cimflow.LookupModel("tinyresnet")
	if err != nil {
		t.Fatal(err)
	}

	// Cold process: compile fresh, persist on the way.
	store, err := cimflow.OpenArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := cimflow.NewEngine(cfg,
		cimflow.WithStrategy(cimflow.StrategyDP),
		cimflow.WithArtifactStore(store))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cold.Session(g)
	if err != nil {
		t.Fatal(err)
	}
	if src := sess.CompileInfo().Source; src != cimflow.CompileFresh {
		t.Fatalf("cold engine compile source = %v, want fresh", src)
	}
	want, err := sess.Infer(context.Background(), sess.SeededInput(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}
	// The engine owned the store: it must be closed now.
	if _, _, err := store.Load("00"); !errors.Is(err, cimflow.ErrStoreClosed) {
		t.Fatalf("store open after Engine.Close: %v", err)
	}
	if err := cold.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}

	// Warm process: same directory, no compile.
	store2, err := cimflow.OpenArtifactStore(dir)
	if err != nil {
		t.Fatalf("reopening store after Engine.Close (lock not released?): %v", err)
	}
	warm, err := cimflow.NewEngine(cfg,
		cimflow.WithStrategy(cimflow.StrategyDP),
		cimflow.WithArtifactStore(store2))
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	sess2, err := warm.Session(g)
	if err != nil {
		t.Fatal(err)
	}
	if src := sess2.CompileInfo().Source; src != cimflow.CompileStore {
		t.Fatalf("warm engine compile source = %v, want store load", src)
	}
	if warm.CompileCalls() != 0 || warm.StoreLoads() != 1 {
		t.Fatalf("warm engine ran %d compiles, %d store loads; want 0 and 1",
			warm.CompileCalls(), warm.StoreLoads())
	}
	got, err := sess2.Infer(context.Background(), sess2.SeededInput(3))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(int8Bytes(want.Output.Data), int8Bytes(got.Output.Data)) ||
		want.Stats.Cycles != got.Stats.Cycles {
		t.Fatal("store-loaded session diverges from fresh compile")
	}
}

func int8Bytes(v []int8) []byte {
	out := make([]byte, len(v))
	for i, b := range v {
		out[i] = byte(b)
	}
	return out
}
