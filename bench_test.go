// Benchmark harness regenerating the paper's evaluation (Sec. IV).
// Each benchmark measures one figure's experiments end to end
// (compile + cycle-accurate simulation) and reports the headline series as
// benchmark metrics: norm_speed/norm_energy for Fig. 5 bars, TOPS and mJ
// for the Fig. 6 / Fig. 7 sweep points. `cmd/cimflow-bench` prints the same
// rows as tables; EXPERIMENTS.md records paper-vs-measured.
package cimflow_test

import (
	"context"
	"fmt"
	"testing"

	"cimflow"
	"cimflow/internal/arch"
	"cimflow/internal/compiler"
	"cimflow/internal/core"
	"cimflow/internal/isa"
	"cimflow/internal/model"
	"cimflow/internal/noc"
	"cimflow/internal/sim"
)

// BenchmarkFig5 regenerates Fig. 5: normalized speed and energy of the
// three compilation strategies on the four benchmark DNNs.
func BenchmarkFig5(b *testing.B) {
	cfg := cimflow.DefaultConfig()
	for _, name := range cimflow.Fig5Models {
		g := cimflow.Model(name)
		var base *cimflow.Result
		for _, s := range []cimflow.Strategy{cimflow.StrategyGeneric, cimflow.StrategyDuplication, cimflow.StrategyDP} {
			b.Run(fmt.Sprintf("%s/%v", name, s), func(b *testing.B) {
				var res *cimflow.Result
				var err error
				for i := 0; i < b.N; i++ {
					res, err = cimflow.Run(g, cfg, cimflow.Options{Strategy: s, Seed: 1})
					if err != nil {
						b.Fatal(err)
					}
				}
				if s == cimflow.StrategyGeneric {
					base = res
				}
				b.ReportMetric(float64(res.Stats.Cycles), "cycles")
				b.ReportMetric(res.EnergyMJ, "mJ")
				if base != nil {
					b.ReportMetric(float64(base.Stats.Cycles)/float64(res.Stats.Cycles), "norm_speed")
					b.ReportMetric(res.EnergyMJ/base.EnergyMJ, "norm_energy")
				}
			})
		}
	}
}

// BenchmarkFig6 regenerates Fig. 6: throughput and energy breakdown across
// MG sizes and NoC flit widths under the generic mapping.
func BenchmarkFig6(b *testing.B) {
	base := cimflow.DefaultConfig()
	for _, name := range []string{"resnet18", "efficientnetb0"} {
		g := cimflow.Model(name)
		for _, mg := range cimflow.Fig6MGSizes {
			for _, flit := range cimflow.Fig6Flits {
				b.Run(fmt.Sprintf("%s/mg%d/flit%d", name, mg, flit), func(b *testing.B) {
					cfg := base.WithMacrosPerGroup(mg).WithFlitBytes(flit)
					var res *cimflow.Result
					var err error
					for i := 0; i < b.N; i++ {
						res, err = cimflow.Run(g, cfg, cimflow.Options{Strategy: cimflow.StrategyGeneric, Seed: 1})
						if err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(res.TOPS, "TOPS")
					b.ReportMetric(res.Stats.Energy.LocalMemPJ/1e9, "mJ_localmem")
					b.ReportMetric(res.Stats.Energy.ComputePJ()/1e9, "mJ_compute")
					b.ReportMetric(res.Stats.Energy.NoCPJ/1e9, "mJ_noc")
				})
			}
		}
	}
}

// BenchmarkFig7 regenerates Fig. 7: the SW/HW design space — the same
// hardware sweep under generic and DP-optimized compilation.
func BenchmarkFig7(b *testing.B) {
	base := cimflow.DefaultConfig()
	for _, name := range []string{"resnet18", "efficientnetb0"} {
		g := cimflow.Model(name)
		for _, s := range []cimflow.Strategy{cimflow.StrategyGeneric, cimflow.StrategyDP} {
			for _, mg := range cimflow.Fig6MGSizes {
				for _, flit := range cimflow.Fig6Flits {
					b.Run(fmt.Sprintf("%s/%v/mg%d/flit%d", name, s, mg, flit), func(b *testing.B) {
						cfg := base.WithMacrosPerGroup(mg).WithFlitBytes(flit)
						var res *cimflow.Result
						var err error
						for i := 0; i < b.N; i++ {
							res, err = cimflow.Run(g, cfg, cimflow.Options{Strategy: s, Seed: 1})
							if err != nil {
								b.Fatal(err)
							}
						}
						b.ReportMetric(res.TOPS, "TOPS")
						b.ReportMetric(res.EnergyMJ, "mJ")
					})
				}
			}
		}
	}
}

// BenchmarkTableIPeak reports the default (Table I) architecture's derived
// peak throughput — the capacity context for every other number.
func BenchmarkTableIPeak(b *testing.B) {
	cfg := cimflow.DefaultConfig()
	var tops float64
	for i := 0; i < b.N; i++ {
		tops = cfg.PeakTOPS()
	}
	b.ReportMetric(tops, "peak_TOPS")
	b.ReportMetric(float64(cfg.ChipWeightBytes())/(1<<20), "chip_MB")
}

// --- Component micro-benchmarks (ablation support) ---

// BenchmarkCompile measures compilation alone per model and strategy.
func BenchmarkCompile(b *testing.B) {
	cfg := arch.DefaultConfig()
	for _, name := range []string{"resnet18", "mobilenetv2"} {
		g := model.Zoo(name)
		for _, s := range []compiler.Strategy{compiler.StrategyGeneric, compiler.StrategyDP} {
			b.Run(fmt.Sprintf("%s/%v", name, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := compiler.Compile(g, &cfg, compiler.Options{Strategy: s}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDPPartition measures the Alg. 1 dynamic program alone.
func BenchmarkDPPartition(b *testing.B) {
	cfg := arch.DefaultConfig()
	for _, name := range []string{"resnet18", "efficientnetb0"} {
		g := model.Zoo(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := compiler.Partition(g, &cfg, compiler.Options{Strategy: compiler.StrategyDP}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulator measures raw simulation throughput (instructions per
// second) on a compute-heavy single-core loop.
func BenchmarkSimulator(b *testing.B) {
	cfg := arch.DefaultConfig()
	cfg.Chip.CoreRows, cfg.Chip.CoreCols = 1, 1
	prog, err := compilePump()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := sim.NewChip(&cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := ch.LoadProgram(sim.Program{Core: 0, Code: prog}); err != nil {
			b.Fatal(err)
		}
		stats, err := ch.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(stats.Instructions), "instructions")
	}
}

func compilePump() ([]isa.Instruction, error) {
	return isa.Assemble(`
		SC_ADDI G1, G0, 500
	loop:	SC_ADDI G2, G0, 64
		SC_ADDI G3, G0, 128
		VEC_ADD G3, G2, G2, G2
		SC_ADDI G1, G1, -1
		BNE G1, G0, %loop
		HALT
	`)
}

// BenchmarkNoCTransfer measures the mesh NoC model.
func BenchmarkNoCTransfer(b *testing.B) {
	cfg := arch.DefaultConfig()
	m := noc.New(&cfg)
	t := int64(0)
	for i := 0; i < b.N; i++ {
		t = m.Transfer(i%64, (i*7+13)%64, 256, t)
	}
}

// BenchmarkReferenceExecutor measures the golden tensor library on the
// compact benchmark model.
func BenchmarkReferenceExecutor(b *testing.B) {
	g := model.TinyCNN()
	ws := model.NewSeededWeights(g, 1)
	in := model.SeededInput(g.Nodes[0].OutShape, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Execute(g, in, ws); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations of the design choices called out in DESIGN.md ---

// BenchmarkAblationClosureEnumeration compares the Alg. 1 DP over full
// dependency-closure enumeration against the linear-prefix fallback
// (MaxClosures=1 forces it): richer candidate stages should never lose
// under the cost model, and the metric shows the gap.
func BenchmarkAblationClosureEnumeration(b *testing.B) {
	cfg := arch.DefaultConfig()
	g := model.MobileNetV2()
	for _, tc := range []struct {
		name        string
		maxClosures int
	}{{"full_closures", 0}, {"prefix_fallback", 1}} {
		b.Run(tc.name, func(b *testing.B) {
			var plan *compiler.Plan
			var err error
			for i := 0; i < b.N; i++ {
				plan, err = compiler.Partition(g, &cfg, compiler.Options{
					Strategy:    compiler.StrategyDP,
					MaxClosures: tc.maxClosures,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(plan.EstimatedCycles, "est_cycles")
			b.ReportMetric(float64(len(plan.Stages)), "stages")
		})
	}
}

// BenchmarkAblationStreaming compares full-buffer input staging against
// forced ring streaming (tiny FullBufferLimit) — the local-memory
// management choice for large activations.
func BenchmarkAblationStreaming(b *testing.B) {
	cfg := arch.DefaultConfig()
	g := model.MobileNetV2()
	for _, tc := range []struct {
		name  string
		limit int32
	}{{"full_buffers", 0}, {"ring_streaming", 4096}} {
		b.Run(tc.name, func(b *testing.B) {
			var res *core.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = core.Run(context.Background(), g, cfg, core.Options{
					Strategy:        compiler.StrategyGeneric,
					Seed:            1,
					FullBufferLimit: tc.limit,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Stats.Cycles), "cycles")
			b.ReportMetric(res.EnergyMJ, "mJ")
		})
	}
}

// BenchmarkAblationIROptimizer reports what the late linear-code passes
// save on a real compiled model.
func BenchmarkAblationIROptimizer(b *testing.B) {
	cfg := arch.DefaultConfig()
	g := model.ResNet18()
	var instr int
	for i := 0; i < b.N; i++ {
		c, err := compiler.Compile(g, &cfg, compiler.Options{Strategy: compiler.StrategyGeneric})
		if err != nil {
			b.Fatal(err)
		}
		instr = c.InstructionCount()
	}
	b.ReportMetric(float64(instr), "instructions")
}

// BenchmarkEndToEndValidation measures the full compile-simulate-compare
// loop used by the functional test suite.
func BenchmarkEndToEndValidation(b *testing.B) {
	cfg := arch.DefaultConfig()
	g := model.TinyResNet()
	for i := 0; i < b.N; i++ {
		mism, err := core.Validate(context.Background(), g, cfg, core.Options{Strategy: compiler.StrategyDP, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if mism != 0 {
			b.Fatalf("%d mismatches", mism)
		}
	}
}
