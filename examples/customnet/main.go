// Custom workload: describe a new DNN with the graph builder (the ONNX-
// equivalent front end), compile it, verify the generated multi-core
// program is bit-exact against the golden reference executor, and inspect
// the partitioning plan and one core's CIMFlow ISA assembly.
//
//	go run ./examples/customnet
package main

import (
	"context"
	"fmt"
	"log"

	"cimflow"
	"cimflow/internal/isa"
)

func main() {
	// A small edge-vision network: stem conv, two residual blocks with a
	// strided downsample, head classifier.
	g, x := cimflow.NewGraph("edgenet", cimflow.Shape{H: 32, W: 32, C: 3})
	x = g.Conv("stem", x, 32, 3, 1, 1, true)
	x = g.MaxPool("pool", x, 2, 2, 0)
	for i, cfg := range []struct{ c, s int }{{32, 1}, {64, 2}} {
		tag := fmt.Sprintf("block%d", i)
		short := x
		y := g.Conv(tag+"_conv1", x, cfg.c, 3, cfg.s, 1, true)
		y = g.Conv(tag+"_conv2", y, cfg.c, 3, 1, 1, false)
		if cfg.s != 1 || g.Nodes[x].OutShape.C != cfg.c {
			short = g.Conv(tag+"_down", x, cfg.c, 1, cfg.s, 0, false)
		}
		y = g.Add(tag+"_add", y, short)
		x = g.ReLU(tag+"_relu", y)
	}
	x = g.GlobalAvgPool("gap", x)
	x = g.Flatten("flatten", x)
	g.Dense("classifier", x, 100, false)
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	cfg := cimflow.DefaultConfig()
	engine, err := cimflow.NewEngine(cfg, cimflow.WithStrategy(cimflow.StrategyDP), cimflow.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	sess, err := engine.Session(g)
	if err != nil {
		log.Fatal(err)
	}
	compiled := sess.Compiled()
	fmt.Printf("compiled %s: %d instructions, %d stages\n\n",
		g.Name, compiled.InstructionCount(), len(compiled.Plan.Stages))
	fmt.Print(compiled.Plan.Summary())

	// Functional validation: simulated output vs golden reference, on the
	// session's already-compiled artifact.
	mism, err := sess.Validate(context.Background(), sess.SeededInput(43))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfunctional validation: %d mismatching elements (bit-exact = 0)\n\n", mism)

	// Peek at the generated code of the first core.
	code := compiled.Programs[0].Code
	n := 24
	if len(code) < n {
		n = len(code)
	}
	fmt.Printf("core 0 program head (%d of %d instructions):\n%s",
		n, len(code), isa.DisassembleProgram(code[:n]))
}
