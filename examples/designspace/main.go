// Design-space exploration: sweep the two hardware knobs of the paper's
// Fig. 6/7 — macro-group size and NoC flit width — under both compilation
// strategies, and print the energy/throughput landscape with the Pareto
// frontier marked. This is the paper's headline use case: early-stage
// architectural exploration where software and hardware choices interact.
//
// The sweep runs on the cimflow DSE engine: a declarative spec expanded
// into points, simulated on a parallel worker pool with compile caching,
// and analyzed with the built-in Pareto helpers.
//
//	go run ./examples/designspace [model]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"cimflow"
)

func main() {
	name := "mobilenetv2"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	if _, err := cimflow.LookupModel(name); err != nil {
		log.Fatal(err)
	}

	spec := &cimflow.SweepSpec{
		Name:       "designspace",
		Models:     []string{name},
		Strategies: []string{"generic", "dp"},
		MGSizes:    []int{4, 8, 16},
		FlitBytes:  []int{8, 16},
	}
	cache := cimflow.NewCompileCache()
	results, err := cimflow.Sweep(context.Background(), spec, cimflow.SweepOptions{Cache: cache})
	if err != nil {
		log.Fatal(err)
	}

	onFront := make(map[int]bool)
	for _, r := range cimflow.ParetoFront(results) {
		onFront[r.Point.Index] = true
	}
	fmt.Printf("design space for %s (energy vs throughput; * = Pareto-optimal):\n\n", name)
	fmt.Printf("%-12s %-3s %-5s %9s %10s\n", "strategy", "mg", "flit", "TOPS", "energy_mJ")
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		mark := " "
		if onFront[r.Point.Index] {
			mark = "*"
		}
		fmt.Printf("%-12v %-3d %-5d %9.3f %10.4f %s\n", r.Point.Strategy,
			r.Point.MGSize, r.Point.FlitBytes, r.Metrics.TOPS, r.Metrics.EnergyMJ, mark)
	}
	if best, ok := cimflow.BestPoint(results, cimflow.ScoreEDP); ok {
		fmt.Printf("\nbest energy-delay product: %s\n", best.Point.Label())
	}
	fmt.Printf("(%d points, %d compiles — an overlapping sweep sharing this cache would reuse them)\n",
		len(results), cache.CompileCalls())

	// The same frontier, found instead of enumerated: successive halving
	// screens the whole space with free planning-stage cost estimates and
	// spends cycle-accurate simulations on the survivors only.
	budget := (len(results) + 3) / 4
	found, err := cimflow.Search(context.Background(), spec, cimflow.SearchOptions{
		Strategy: "halving",
		Budget:   budget,
		Seed:     1,
		Cache:    cimflow.NewCompileCache(), // fresh cache: an honest count
	})
	if err != nil {
		log.Fatal(err)
	}
	recovered := 0
	for _, r := range found.Frontier {
		if onFront[r.Point.Index] {
			recovered++
		}
	}
	fmt.Printf("\nsearch (successive halving, budget %d of %d sims, %d estimates):\n",
		budget, len(results), found.Estimates)
	for _, r := range found.Frontier {
		fmt.Printf("  frontier %-28s %9.3f TOPS %10.4f mJ\n",
			r.Point.Label(), r.Metrics.TOPS, r.Metrics.EnergyMJ)
	}
	fmt.Printf("recovered %d/%d exhaustive frontier points with %d/%d simulations\n",
		recovered, len(onFront), found.Sims, len(results))

	fmt.Println("\nNote how the optimized mapping reshapes the hardware Pareto frontier —")
	fmt.Println("the paper's argument for integrated SW/HW co-design (Fig. 7).")
}
