// Design-space exploration: sweep the two hardware knobs of the paper's
// Fig. 6/7 — macro-group size and NoC flit width — under both compilation
// strategies, and print the energy/throughput landscape with the Pareto
// frontier marked. This is the paper's headline use case: early-stage
// architectural exploration where software and hardware choices interact.
//
//	go run ./examples/designspace [model]
package main

import (
	"fmt"
	"log"
	"os"

	"cimflow"
)

func main() {
	name := "mobilenetv2"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	g := cimflow.Model(name)
	if g == nil {
		log.Fatalf("unknown model %q (try: %v)", name, cimflow.ModelNames())
	}
	base := cimflow.DefaultConfig()

	type point struct {
		mg, flit int
		strategy cimflow.Strategy
		tops     float64
		mj       float64
	}
	var pts []point
	for _, s := range []cimflow.Strategy{cimflow.StrategyGeneric, cimflow.StrategyDP} {
		for _, mg := range []int{4, 8, 16} {
			for _, flit := range []int{8, 16} {
				cfg := base.WithMacrosPerGroup(mg).WithFlitBytes(flit)
				res, err := cimflow.Run(g, cfg, cimflow.Options{Strategy: s, Seed: 1})
				if err != nil {
					log.Fatal(err)
				}
				pts = append(pts, point{mg, flit, s, res.TOPS, res.EnergyMJ})
			}
		}
	}
	pareto := func(p point) bool {
		for _, q := range pts {
			if q.tops > p.tops && q.mj < p.mj {
				return false
			}
		}
		return true
	}
	fmt.Printf("design space for %s (energy vs throughput; * = Pareto-optimal):\n\n", name)
	fmt.Printf("%-12s %-3s %-5s %9s %10s\n", "strategy", "mg", "flit", "TOPS", "energy_mJ")
	for _, p := range pts {
		mark := " "
		if pareto(p) {
			mark = "*"
		}
		fmt.Printf("%-12v %-3d %-5d %9.3f %10.4f %s\n", p.strategy, p.mg, p.flit, p.tops, p.mj, mark)
	}
	fmt.Println("\nNote how the optimized mapping reshapes the hardware Pareto frontier —")
	fmt.Println("the paper's argument for integrated SW/HW co-design (Fig. 7).")
}
