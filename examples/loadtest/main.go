// Loadtest: reproduce throughput/latency curves for the serving subsystem.
// An open-loop generator offers a fixed arrival rate to a cimflow.Server at
// several (rps, workers) points and tabulates completion rate, shedding,
// dynamic-batch sizes and latency quantiles — the serving analogue of the
// paper's closed-loop evaluation sweeps.
//
//	go run ./examples/loadtest [model]
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cimflow"
	"cimflow/internal/report"
)

const (
	duration = 3 * time.Second
	timeout  = 2 * time.Second
	maxBatch = 8
	maxDelay = 5 * time.Millisecond
	queue    = 64
)

type point struct {
	rps     int
	workers int
}

type row struct {
	point
	sent, completed, shed, expired int64
	throughput                     float64
	p50, p95, p99                  float64
	maxBatchSeen                   int
}

func main() {
	model := "tinymlp"
	if len(os.Args) > 1 {
		model = os.Args[1]
	}
	// One engine across every point: the model compiles once and the
	// sweep reuses the artifact, exactly like a DSE sweep would.
	engine, err := cimflow.NewEngine(cimflow.DefaultConfig(),
		cimflow.WithStrategy(cimflow.StrategyDP), cimflow.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	points := []point{
		{rps: 50, workers: 1},
		{rps: 200, workers: 1},
		{rps: 400, workers: 1},
		{rps: 400, workers: 4},
		{rps: 800, workers: 4},
	}
	table := report.New(fmt.Sprintf("serving loadtest: %s, open loop, %v per point", model, duration),
		"rps", "workers", "sent", "done", "shed", "expired", "inf/s", "p50 ms", "p95 ms", "p99 ms", "max batch")
	var w1, w4 float64
	for _, p := range points {
		r, err := run(engine, model, p)
		if err != nil {
			log.Fatal(err)
		}
		table.Add(r.rps, r.workers, r.sent, r.completed, r.shed, r.expired,
			r.throughput, r.p50, r.p95, r.p99, r.maxBatchSeen)
		if r.rps == 400 && r.workers == 1 {
			w1 = r.throughput
		}
		if r.rps == 400 && r.workers == 4 {
			w4 = r.throughput
		}
	}
	fmt.Println()
	table.Write(os.Stdout)
	fmt.Printf("\ncompilations across all %d points: %d (cache hits %d)\n",
		len(points), engine.CompileCalls(), engine.CacheHits())
	if w1 > 0 {
		fmt.Printf("worker scaling at 400 rps: 1 worker %.1f inf/s -> 4 workers %.1f inf/s (%.2fx)\n",
			w1, w4, w4/w1)
	}
}

// run offers p.rps requests/second for the configured duration and
// collects the point's serving metrics.
func run(engine *cimflow.Engine, model string, p point) (row, error) {
	srv := cimflow.NewServer(engine,
		cimflow.WithWorkers(p.workers),
		cimflow.WithMaxBatch(maxBatch),
		cimflow.WithMaxDelay(maxDelay),
		cimflow.WithQueueDepth(queue))
	if err := srv.ServeModel(model); err != nil {
		return row{}, err
	}
	shape, err := srv.InputShape(model)
	if err != nil {
		return row{}, err
	}

	var sent, completed, shed, expired atomic.Int64
	var wg sync.WaitGroup
	ticker := time.NewTicker(time.Second / time.Duration(p.rps))
	defer ticker.Stop()
	stop := time.After(duration)
	start := time.Now()
	var n uint64
arrivals:
	for {
		select {
		case <-stop:
			break arrivals
		case <-ticker.C:
			seed := n % 1024
			n++
			sent.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				defer cancel()
				_, err := srv.Infer(ctx, model, cimflow.SeededInput(shape, seed))
				switch {
				case err == nil:
					completed.Add(1)
				case errors.Is(err, cimflow.ErrOverloaded):
					shed.Add(1)
				case errors.Is(err, context.DeadlineExceeded):
					expired.Add(1)
				default:
					log.Fatalf("rps=%d workers=%d: %v", p.rps, p.workers, err)
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := srv.Close(); err != nil {
		return row{}, err
	}
	mm := srv.Metrics().Models[model]
	r := row{
		point:      p,
		sent:       sent.Load(),
		completed:  completed.Load(),
		shed:       shed.Load(),
		expired:    expired.Load(),
		throughput: float64(completed.Load()) / elapsed.Seconds(),
		p50:        mm.P50Ms,
		p95:        mm.P95Ms,
		p99:        mm.P99Ms,
	}
	for size := range mm.BatchHist {
		if size > r.maxBatchSeen {
			r.maxBatchSeen = size
		}
	}
	fmt.Printf("rps=%-4d workers=%d: %.1f inf/s, p99 %.1f ms, largest batch %d\n",
		p.rps, p.workers, r.throughput, r.p99, r.maxBatchSeen)
	return r, nil
}
