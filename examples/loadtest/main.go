// Loadtest: reproduce throughput/latency curves for the serving subsystem.
// An open-loop generator offers a fixed arrival rate to a cimflow.Server at
// several (rps, workers) points and tabulates completion rate, shedding,
// dynamic-batch sizes and latency quantiles — the serving analogue of the
// paper's closed-loop evaluation sweeps.
//
//	go run ./examples/loadtest [model]
//
// With -cluster, the same trace instead replays against a 3-replica
// cluster behind the router — diurnal ramp, a mid-trace burst, a
// gold/free tenant mix — and reports per-tenant SLO attainment, once
// with a slow replica and hedging disabled, once with hedging on.
//
//	go run ./examples/loadtest -cluster [model]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cimflow"
	"cimflow/internal/report"
)

const (
	duration = 3 * time.Second
	timeout  = 2 * time.Second
	maxBatch = 8
	maxDelay = 5 * time.Millisecond
	queue    = 64
)

type point struct {
	rps     int
	workers int
}

type row struct {
	point
	sent, completed, shed, expired int64
	throughput                     float64
	p50, p95, p99                  float64
	maxBatchSeen                   int
}

func main() {
	clusterMode := flag.Bool("cluster", false, "replay a tenant-mix trace against a 3-replica cluster instead of the single-server sweep")
	flag.Parse()
	model := "tinymlp"
	if flag.NArg() > 0 {
		model = flag.Arg(0)
	}
	if *clusterMode {
		if err := runCluster(model); err != nil {
			log.Fatal(err)
		}
		return
	}
	// One engine across every point: the model compiles once and the
	// sweep reuses the artifact, exactly like a DSE sweep would.
	engine, err := cimflow.NewEngine(cimflow.DefaultConfig(),
		cimflow.WithStrategy(cimflow.StrategyDP), cimflow.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	points := []point{
		{rps: 50, workers: 1},
		{rps: 200, workers: 1},
		{rps: 400, workers: 1},
		{rps: 400, workers: 4},
		{rps: 800, workers: 4},
	}
	table := report.New(fmt.Sprintf("serving loadtest: %s, open loop, %v per point", model, duration),
		"rps", "workers", "sent", "done", "shed", "expired", "inf/s", "p50 ms", "p95 ms", "p99 ms", "max batch")
	var w1, w4 float64
	for _, p := range points {
		r, err := run(engine, model, p)
		if err != nil {
			log.Fatal(err)
		}
		table.Add(r.rps, r.workers, r.sent, r.completed, r.shed, r.expired,
			r.throughput, r.p50, r.p95, r.p99, r.maxBatchSeen)
		if r.rps == 400 && r.workers == 1 {
			w1 = r.throughput
		}
		if r.rps == 400 && r.workers == 4 {
			w4 = r.throughput
		}
	}
	fmt.Println()
	table.Write(os.Stdout)
	fmt.Printf("\ncompilations across all %d points: %d (cache hits %d)\n",
		len(points), engine.CompileCalls(), engine.CacheHits())
	if w1 > 0 {
		fmt.Printf("worker scaling at 400 rps: 1 worker %.1f inf/s -> 4 workers %.1f inf/s (%.2fx)\n",
			w1, w4, w4/w1)
	}
}

// run offers p.rps requests/second for the configured duration and
// collects the point's serving metrics.
func run(engine *cimflow.Engine, model string, p point) (row, error) {
	srv := cimflow.NewServer(engine,
		cimflow.WithWorkers(p.workers),
		cimflow.WithMaxBatch(maxBatch),
		cimflow.WithMaxDelay(maxDelay),
		cimflow.WithQueueDepth(queue))
	if err := srv.ServeModel(model); err != nil {
		return row{}, err
	}
	shape, err := srv.InputShape(model)
	if err != nil {
		return row{}, err
	}

	var sent, completed, shed, expired atomic.Int64
	var wg sync.WaitGroup
	ticker := time.NewTicker(time.Second / time.Duration(p.rps))
	defer ticker.Stop()
	stop := time.After(duration)
	start := time.Now()
	var n uint64
arrivals:
	for {
		select {
		case <-stop:
			break arrivals
		case <-ticker.C:
			seed := n % 1024
			n++
			sent.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				defer cancel()
				_, err := srv.Infer(ctx, model, cimflow.SeededInput(shape, seed))
				switch {
				case err == nil:
					completed.Add(1)
				case errors.Is(err, cimflow.ErrOverloaded):
					shed.Add(1)
				case errors.Is(err, context.DeadlineExceeded):
					expired.Add(1)
				default:
					log.Fatalf("rps=%d workers=%d: %v", p.rps, p.workers, err)
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := srv.Close(); err != nil {
		return row{}, err
	}
	mm := srv.Metrics().Models[model]
	r := row{
		point:      p,
		sent:       sent.Load(),
		completed:  completed.Load(),
		shed:       shed.Load(),
		expired:    expired.Load(),
		throughput: float64(completed.Load()) / elapsed.Seconds(),
		p50:        mm.P50Ms,
		p95:        mm.P95Ms,
		p99:        mm.P99Ms,
	}
	for size := range mm.BatchHist {
		if size > r.maxBatchSeen {
			r.maxBatchSeen = size
		}
	}
	fmt.Printf("rps=%-4d workers=%d: %.1f inf/s, p99 %.1f ms, largest batch %d\n",
		p.rps, p.workers, r.throughput, r.p99, r.maxBatchSeen)
	return r, nil
}

// --- cluster trace replay ---

// runCluster replays one trace twice against a fresh 3-replica fleet with
// the model's hash-owner replica slowed by 40ms: hedging disabled, then
// enabled. With the owner uniformly slow, a full hedge budget routes every
// request's hedge onto the fast successor and the tail collapses (see
// EXPERIMENTS.md for a recorded run; keep the offered rate modest — hedges
// spend real simulator CPU).
func runCluster(model string) error {
	spec := cimflow.TraceSpec{
		Duration:         4 * time.Second,
		RPS:              30,
		DiurnalAmplitude: 0.3,
		Models:           []string{model},
		Tenants: []cimflow.TraceTenant{
			{Name: "gold", Weight: 1, Deadline: 300 * time.Millisecond},
			{Name: "free", Weight: 3, Deadline: time.Second},
		},
		Seed: 1,
	}
	tenants := []cimflow.TenantConfig{
		{Name: "gold", Priority: cimflow.PriorityInteractive},
		{Name: "free", Priority: cimflow.PriorityStandard, Rate: 200},
	}
	owner, err := hashOwner(model)
	if err != nil {
		return err
	}
	fmt.Printf("hash owner for %s: %s (will be slowed by 40ms)\n", model, owner)
	for _, hedge := range []time.Duration{0, 15 * time.Millisecond} {
		rep, err := replayOnce(model, spec, tenants, hedge, owner)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("cluster replay: %s, 3 replicas (%s +40ms), hedge %v", model, owner, hedge)
		fmt.Println()
		if err := rep.Table(label).Write(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("hedges %d launched / %d won, retries %d, fallbacks %d\n",
			rep.Router.HedgesLaunched, rep.Router.HedgesWon, rep.Router.Retries, rep.Router.Fallbacks)
	}
	return nil
}

// hashOwner probes a throwaway fleet with one request to learn which
// replica the consistent-hash ring places the model on — the ring is a
// pure function of the member names, so the answer holds for the real
// runs below.
func hashOwner(model string) (string, error) {
	rep, err := replayOnce(model, cimflow.TraceSpec{
		Duration: 50 * time.Millisecond,
		RPS:      20,
		Models:   []string{model},
		Seed:     1,
	}, nil, 0, "")
	if err != nil {
		return "", err
	}
	owner, placements := "", int64(0)
	for name, bm := range rep.Router.Backends {
		if bm.Placements > placements {
			owner, placements = name, bm.Placements
		}
	}
	if owner == "" {
		return "", fmt.Errorf("probe trace recorded no placements")
	}
	return owner, nil
}

func replayOnce(model string, spec cimflow.TraceSpec, tenants []cimflow.TenantConfig, hedge time.Duration, slow string) (*cimflow.ReplayReport, error) {
	opts := []cimflow.RouterOption{
		cimflow.WithHedgeDelay(hedge),
		cimflow.WithHedgeBudget(1),
		cimflow.WithCheckInterval(0),
	}
	for _, t := range tenants {
		opts = append(opts, cimflow.WithTenant(t))
	}
	router := cimflow.NewRouter(opts...)
	defer router.Close()
	for i := 0; i < 3; i++ {
		engine, err := cimflow.NewEngine(cimflow.DefaultConfig(),
			cimflow.WithStrategy(cimflow.StrategyDP), cimflow.WithSeed(1))
		if err != nil {
			return nil, err
		}
		defer engine.Close()
		srv := cimflow.NewServer(engine,
			cimflow.WithWorkers(2),
			cimflow.WithMaxBatch(maxBatch),
			cimflow.WithMaxDelay(maxDelay),
			cimflow.WithQueueDepth(queue))
		if err := srv.ServeModel(model); err != nil {
			return nil, err
		}
		defer srv.Close()
		b := cimflow.NewLocalBackend(fmt.Sprintf("replica-%d", i), srv)
		if b.Name() == slow {
			b = cimflow.DelayedBackend(b, 40*time.Millisecond)
		}
		if err := router.AddBackend(b); err != nil {
			return nil, err
		}
	}
	return cimflow.ReplayTrace(context.Background(), router, spec)
}
