// Serving: drive one Engine from many goroutines — the
// compile-once/infer-many workload the Engine API exists for. A single
// Session compiles the model once and stages its weights once; concurrent
// workers then push their own inputs through pooled chips, every result
// carries per-run Stats, and a deadline on the shared context aborts any
// still-running simulations mid-flight.
//
//	go run ./examples/serving [model] [workers] [requests-per-worker]
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"strconv"
	"sync"
	"time"

	"cimflow"
)

func main() {
	name, workers, perWorker := "tinyresnet", 4, 8
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	parsePositive := func(arg, what string) int {
		n, err := strconv.Atoi(arg)
		if err != nil || n < 1 {
			log.Fatalf("%s must be a positive integer, got %q", what, arg)
		}
		return n
	}
	if len(os.Args) > 2 {
		workers = parsePositive(os.Args[2], "workers")
	}
	if len(os.Args) > 3 {
		perWorker = parsePositive(os.Args[3], "requests-per-worker")
	}
	g, err := cimflow.LookupModel(name)
	if err != nil {
		log.Fatal(err)
	}

	engine, err := cimflow.NewEngine(cimflow.DefaultConfig(),
		cimflow.WithStrategy(cimflow.StrategyDP),
		cimflow.WithSeed(1),
		cimflow.WithMaxPooledChips(workers))
	if err != nil {
		log.Fatal(err)
	}
	sess, err := engine.Session(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %s: %d workers x %d requests, input %v\n",
		g.Name, workers, perWorker, sess.InputShape())

	// One deadline guards the whole fleet: when it fires, every in-flight
	// cycle-accurate simulation aborts with context.DeadlineExceeded.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	type tally struct {
		done      int
		cycles    int64
		energyMJ  float64
		cancelled int
		err       error // first non-cancellation failure
	}
	tallies := make([]tally, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < perWorker; r++ {
				// Each worker serves its own request stream: a distinct
				// input tensor per request, as a real frontend would.
				input := sess.SeededInput(uint64(1000*w + r))
				res, err := sess.Infer(ctx, input)
				switch {
				case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
					tallies[w].cancelled++
				case err != nil:
					if tallies[w].err == nil {
						tallies[w].err = err
					}
				default:
					tallies[w].done++
					tallies[w].cycles += res.Stats.Cycles
					tallies[w].energyMJ += res.EnergyMJ
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total tally
	for _, t := range tallies {
		total.done += t.done
		total.cycles += t.cycles
		total.energyMJ += t.energyMJ
		total.cancelled += t.cancelled
		if total.err == nil {
			total.err = t.err
		}
	}
	if total.err != nil {
		log.Fatalf("inference failed: %v", total.err)
	}
	fmt.Printf("\n%d inferences in %v (%.1f inf/s wall-clock), %d cancelled\n",
		total.done, elapsed.Round(time.Millisecond),
		float64(total.done)/elapsed.Seconds(), total.cancelled)
	if total.done > 0 {
		fmt.Printf("per inference: %d simulated cycles, %.4f mJ\n",
			total.cycles/int64(total.done), total.energyMJ/float64(total.done))
	}
	fmt.Printf("compilations: %d (cache hits %d), pooled chips: %d\n",
		engine.CompileCalls(), engine.CacheHits(), sess.PooledChips())
}
