// Quickstart: compile a benchmark DNN for the paper's default digital CIM
// architecture (Table I), simulate one inference cycle-accurately, and
// print the performance/energy report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cimflow"
)

func main() {
	g := cimflow.Model("resnet18")
	cfg := cimflow.DefaultConfig()
	fmt.Printf("model: %s (%.1f MB INT8 weights, %.2f GMACs)\n",
		g.Name, float64(g.TotalWeightBytes())/(1<<20), float64(g.TotalMACs())/1e9)
	fmt.Printf("architecture: %s (%d cores, %.0f TOPS peak, %d MB CIM capacity)\n\n",
		cfg.Name, cfg.NumCores(), cfg.PeakTOPS(), cfg.ChipWeightBytes()>>20)

	res, err := cimflow.Run(g, cfg, cimflow.Options{Strategy: cimflow.StrategyDP, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Stats)
	fmt.Printf("\nlatency %.3f ms, %.2f TOPS, %.4f mJ per inference\n",
		res.Seconds*1e3, res.TOPS, res.EnergyMJ)
	fmt.Printf("plan: %d execution stages\n", len(res.Compiled.Plan.Stages))
}
