// Quickstart: compile a benchmark DNN for the paper's default digital CIM
// architecture (Table I) through a reusable Engine, simulate inferences
// cycle-accurately on a pooled chip, and print the performance/energy
// report. The model is compiled exactly once no matter how many times
// Infer runs — the compile-once/infer-many split of the paper's Fig. 2.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"cimflow"
)

func main() {
	g, err := cimflow.LookupModel("resnet18")
	if err != nil {
		log.Fatal(err)
	}
	cfg := cimflow.DefaultConfig()
	fmt.Printf("model: %s (%.1f MB INT8 weights, %.2f GMACs)\n",
		g.Name, float64(g.TotalWeightBytes())/(1<<20), float64(g.TotalMACs())/1e9)
	fmt.Printf("architecture: %s (%d cores, %.0f TOPS peak, %d MB CIM capacity)\n\n",
		cfg.Name, cfg.NumCores(), cfg.PeakTOPS(), cfg.ChipWeightBytes()>>20)

	engine, err := cimflow.NewEngine(cfg, cimflow.WithStrategy(cimflow.StrategyDP), cimflow.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	sess, err := engine.Session(g)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	res, err := sess.Infer(ctx, sess.SeededInput(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Stats)
	fmt.Printf("\nlatency %.3f ms, %.2f TOPS, %.4f mJ per inference\n",
		res.Seconds*1e3, res.TOPS, res.EnergyMJ)
	fmt.Printf("plan: %d execution stages\n", len(res.Compiled.Plan.Stages))

	// A second inference with a different input reuses the compiled
	// programs and the weight-loaded chip; only the simulation itself runs.
	if _, err := sess.Infer(ctx, sess.SeededInput(3)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2 inferences, %d compilation(s), %d pooled chip(s)\n",
		engine.CompileCalls(), sess.PooledChips())
}
