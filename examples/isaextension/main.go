// ISA extensibility: register a custom instruction through the instruction
// description template — the paper's mechanism for integrating new
// operations ("seamless integration of new operations into the framework
// when provided with their associated performance parameters") — and show
// it is immediately encodable, assemblable and disassemblable.
//
//	go run ./examples/isaextension
package main

import (
	"fmt"
	"log"

	"cimflow/internal/isa"
)

func main() {
	// A hypothetical in-memory lookup-table activation unit: CIM_LUT maps
	// the macro-group accumulator through a programmable 256-entry table.
	ext := isa.Descriptor{
		Name:        "CIM_LUT",
		Op:          isa.Opcode(50), // extension opcode space starts at 48
		Format:      isa.FormatC,
		Unit:        isa.UnitCIM,
		Operands:    []string{"rs", "rt", "re", "flags"},
		FixedCycles: 4,
		EnergyClass: "cim",
	}
	if err := isa.Register(ext); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %s (opcode %d, format %s, %s unit)\n\n",
		ext.Name, ext.Op, ext.Format, ext.Unit)

	prog, err := isa.Assemble(`
		SC_LUI G1, 1           ; table base 64 KiB
		SC_ADDI G2, G0, 64     ; length
		SC_ADDI G3, G0, 256    ; output
		CIM_LUT G1, G2, G3, 0x1
		HALT
	`)
	if err != nil {
		log.Fatal(err)
	}
	words, err := isa.EncodeProgram(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("assembled, encoded and round-tripped:")
	for i, w := range words {
		back, err := isa.Decode(w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %08x  %s\n", w, back)
		_ = i
	}
	fmt.Println("\nthe base ISA is protected:")
	if err := isa.Register(isa.Descriptor{Name: "EVIL", Op: isa.OpCimMVM}); err != nil {
		fmt.Println("  opcode conflict rejected:", err)
	}
	if err := isa.Unregister("CIM_MVM"); err != nil {
		fmt.Println("  base unregister rejected:", err)
	}
}
