package cimflow

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"cimflow/internal/cluster"
	"cimflow/internal/serve"
)

// Serving errors and metric types re-exported from internal/serve.
var (
	// ErrOverloaded reports load shedding: the model's bounded request
	// queue was full at admission time.
	ErrOverloaded = serve.ErrOverloaded
	// ErrUnknownModel reports a request for a model the server does not
	// serve.
	ErrUnknownModel = serve.ErrUnknownModel
	// ErrServerClosed reports a request submitted after Server.Close.
	ErrServerClosed = serve.ErrClosed
)

type (
	// ModelMetrics is one served model's snapshot: queue state, admission
	// counters, batch-size histogram and latency quantiles.
	ModelMetrics = serve.ModelMetrics
)

// ServerMetrics is a point-in-time snapshot of a Server: per-model serving
// metrics plus the engine's compile-cache and chip-pool counters.
type ServerMetrics struct {
	Workers      int                     `json:"workers"`
	Models       map[string]ModelMetrics `json:"models"`
	CompileCalls int64                   `json:"compile_calls"`
	CacheHits    int64                   `json:"cache_hits"`
	PooledChips  int                     `json:"pooled_chips"`
}

// ServeOption configures a Server or one served model, mirroring the
// Engine's functional-option style.
type ServeOption func(*serveSettings)

type serveSettings struct {
	workers     int
	model       serve.ModelConfig
	sessionOpts []Option
}

// WithWorkers sets the server's dispatch worker-pool size (default 1).
// Workers are the unit of chip parallelism: each dispatches one coalesced
// batch at a time, sequentially within the batch, so total simultaneous
// simulations equal the worker count.
func WithWorkers(n int) ServeOption {
	return func(s *serveSettings) { s.workers = n }
}

// WithMaxBatch caps how many queued requests the dynamic batcher coalesces
// into one dispatch (default 8).
func WithMaxBatch(n int) ServeOption {
	return func(s *serveSettings) { s.model.MaxBatch = n }
}

// WithMaxDelay bounds how long the batcher waits after a batch's first
// request for more to arrive (default 2ms; 0 batches greedily).
func WithMaxDelay(d time.Duration) ServeOption {
	return func(s *serveSettings) { s.model.MaxDelay = d }
}

// WithQueueDepth bounds a model's admission queue; requests beyond it are
// shed with ErrOverloaded (default 64).
func WithQueueDepth(n int) ServeOption {
	return func(s *serveSettings) { s.model.QueueDepth = n }
}

// WithSessionOptions forwards engine options (WithStrategy, WithSeed, …)
// to the Session a served model is built on.
func WithSessionOptions(opts ...Option) ServeOption {
	return func(s *serveSettings) { s.sessionOpts = append(s.sessionOpts, opts...) }
}

// Server is the multi-model inference serving front of the framework,
// layered on an Engine: each served model gets a bounded request queue
// with deadline-aware admission control and a dynamic batcher, and a
// worker pool shared fairly across hot models dispatches the coalesced
// batches onto pooled chips. Build one with NewServer, register models
// with ServeModel, submit with Infer, observe with Metrics, and drain
// gracefully with Close. A Server is safe for concurrent use.
type Server struct {
	engine   *Engine
	inner    *serve.Server
	defaults serveSettings
}

// NewServer starts a serving front end over an engine. Server-wide options
// (WithWorkers) apply here; model options passed here become defaults for
// every ServeModel call.
func NewServer(e *Engine, opts ...ServeOption) *Server {
	s := &Server{engine: e}
	for _, opt := range opts {
		opt(&s.defaults)
	}
	s.inner = serve.NewServer(s.defaults.workers)
	return s
}

// Engine returns the engine the server runs on.
func (s *Server) Engine() *Engine { return s.engine }

// ServeModel compiles the named zoo model through the engine (reusing its
// cache and session pool) and registers it for serving. Options override
// the server-wide defaults for this model only.
func (s *Server) ServeModel(name string, opts ...ServeOption) error {
	g, err := LookupModel(name)
	if err != nil {
		return err
	}
	return s.ServeGraph(name, g, opts...)
}

// ServeGraph registers a custom graph under a name, for models built with
// NewGraph rather than looked up from the zoo.
func (s *Server) ServeGraph(name string, g *Graph, opts ...ServeOption) error {
	if s.inner.Serves(name) {
		return fmt.Errorf("cimflow: model %q already served", name)
	}
	st := s.defaults
	for _, opt := range opts {
		opt(&st)
	}
	sess, err := s.engine.Session(g, st.sessionOpts...)
	if err != nil {
		return err
	}
	return s.inner.AddModel(name, sess.inner, st.model)
}

// Models lists the served model names, sorted.
func (s *Server) Models() []string { return s.inner.Models() }

// InputShape returns the input tensor shape a served model expects.
func (s *Server) InputShape(model string) (Shape, error) {
	sess, _, err := s.inner.Model(model)
	if err != nil {
		return Shape{}, err
	}
	return sess.InputShape(), nil
}

// Infer submits one request and blocks until it is served, shed or ctx
// expires. Admission is deadline-aware: an expired context fails
// immediately, a full queue sheds with ErrOverloaded, and a request whose
// deadline passes while queued is dropped at dispatch time. Served
// results are byte-identical to a direct Session.Infer with the same
// input.
func (s *Server) Infer(ctx context.Context, model string, input Tensor) (*Result, error) {
	return s.inner.Infer(ctx, model, input)
}

// Metrics snapshots the server: per-model queue depth, admission and
// completion counters, batch-size histogram, p50/p95/p99 request latency,
// and the engine's compile-cache and chip-pool counters.
func (s *Server) Metrics() ServerMetrics {
	m := s.inner.Metrics()
	return ServerMetrics{
		Workers:      m.Workers,
		Models:       m.Models,
		CompileCalls: s.engine.CompileCalls(),
		CacheHits:    s.engine.CacheHits(),
		PooledChips:  s.engine.PooledChips(),
	}
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format — the same encoder the cluster router uses, so a scrape config
// covers both serving tiers with one job.
func (m ServerMetrics) WritePrometheus(w io.Writer) error {
	mw := cluster.NewMetricWriter(w)
	mw.Gauge("cimflow_serve_workers", "Dispatch worker-pool size.")
	mw.Sample("cimflow_serve_workers", nil, float64(m.Workers))
	mw.Counter("cimflow_serve_compile_calls_total", "Engine compile invocations.")
	mw.Sample("cimflow_serve_compile_calls_total", nil, float64(m.CompileCalls))
	mw.Counter("cimflow_serve_cache_hits_total", "Engine compile-cache hits.")
	mw.Sample("cimflow_serve_cache_hits_total", nil, float64(m.CacheHits))
	mw.Gauge("cimflow_serve_pooled_chips", "Simulated chips held across session pools.")
	mw.Sample("cimflow_serve_pooled_chips", nil, float64(m.PooledChips))

	names := make([]string, 0, len(m.Models))
	for name := range m.Models {
		names = append(names, name)
	}
	sort.Strings(names)

	mw.Gauge("cimflow_model_queue_depth", "Requests waiting in the model's admission queue.")
	for _, name := range names {
		mw.Sample("cimflow_model_queue_depth", cluster.Labels{{Name: "model", Value: name}}, float64(m.Models[name].QueueDepth))
	}
	mw.Counter("cimflow_model_requests_total", "Requests by model and outcome.")
	for _, name := range names {
		mm := m.Models[name]
		for _, oc := range []struct {
			outcome string
			v       int64
		}{
			{"accepted", mm.Accepted}, {"completed", mm.Completed},
			{"shed", mm.Shed}, {"expired", mm.Expired}, {"failed", mm.Failed},
		} {
			mw.Sample("cimflow_model_requests_total",
				cluster.Labels{{Name: "model", Value: name}, {Name: "outcome", Value: oc.outcome}}, float64(oc.v))
		}
	}
	mw.Counter("cimflow_model_batches_total", "Coalesced batch dispatches by model.")
	for _, name := range names {
		mw.Sample("cimflow_model_batches_total", cluster.Labels{{Name: "model", Value: name}}, float64(m.Models[name].Batches))
	}
	mw.Gauge("cimflow_model_latency_ms", "Request latency quantiles by model, milliseconds.")
	for _, name := range names {
		mm := m.Models[name]
		for _, q := range []struct {
			q string
			v float64
		}{{"0.5", mm.P50Ms}, {"0.95", mm.P95Ms}, {"0.99", mm.P99Ms}} {
			mw.Sample("cimflow_model_latency_ms",
				cluster.Labels{{Name: "model", Value: name}, {Name: "quantile", Value: q.q}}, q.v)
		}
	}
	mw.Gauge("cimflow_model_sim_lanes", "Configured lane-batch capacity by model.")
	for _, name := range names {
		mw.Sample("cimflow_model_sim_lanes", cluster.Labels{{Name: "model", Value: name}}, float64(m.Models[name].SimLanes))
	}
	mw.Counter("cimflow_model_lane_runs_total", "Chip runs by model and lane occupancy.")
	for _, name := range names {
		mm := m.Models[name]
		lanes := make([]int, 0, len(mm.LaneOccupancy))
		for b := range mm.LaneOccupancy {
			lanes = append(lanes, b)
		}
		sort.Ints(lanes)
		for _, b := range lanes {
			mw.Sample("cimflow_model_lane_runs_total",
				cluster.Labels{{Name: "model", Value: name}, {Name: "lanes", Value: strconv.Itoa(b)}}, float64(mm.LaneOccupancy[b]))
		}
	}
	mw.Counter("cimflow_model_lane_fallbacks_total", "Lanes that diverged during lane-batched runs and re-ran serially.")
	for _, name := range names {
		mw.Sample("cimflow_model_lane_fallbacks_total", cluster.Labels{{Name: "model", Value: name}}, float64(m.Models[name].LaneFallbacks))
	}
	return mw.Err()
}

// Close stops admission, serves every queued request, and stops the
// workers. It leaves the engine (and its sessions) open so the caller can
// keep using them or shut them down with Engine.Close.
func (s *Server) Close() error { return s.inner.Close() }
